package baseline

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"s2/internal/config"
	"s2/internal/dataplane"
	"s2/internal/route"
	"s2/internal/topology"
)

// BonsaiOptions configures the compression baseline.
type BonsaiOptions struct {
	// Parallelism bounds concurrent per-prefix simulations (default:
	// GOMAXPROCS) — the core-count limit that caps Bonsai's scalability
	// in §5.4.
	Parallelism int
	// MetaBits passes through to the per-prefix verifier.
	MetaBits int
	// Timeout aborts the run when the per-prefix sweep exceeds it
	// (0 = none) — Bonsai "times out on hyper-scale FatTrees".
	Timeout time.Duration
}

// BonsaiResult summarizes an all-pair reachability run.
type BonsaiResult struct {
	Prefixes  int
	Reachable int
	Unreached []string
	// CompressTime is the total time spent deriving compressed
	// topologies (grows with network size, per §5.4); SimTime is the
	// total compressed-simulation time across prefixes.
	CompressTime time.Duration
	SimTime      time.Duration
	// PeakBytes models the worst-case resident memory: the full snapshot
	// scan plus Parallelism concurrent 6-node simulations.
	PeakBytes int64
}

// fatTreeRoles classifies switches structurally (not by name): edges
// announce prefixes, aggregations neighbor edges, cores neighbor only
// aggregations. Returns an error when the topology does not decompose,
// reproducing Bonsai's inapplicability beyond FatTree-like networks.
type fatTreeRoles struct {
	edge, agg, core map[string]bool
}

func classifyFatTree(snap *config.Snapshot, net *topology.Network) (*fatTreeRoles, error) {
	r := &fatTreeRoles{edge: map[string]bool{}, agg: map[string]bool{}, core: map[string]bool{}}
	for name, dev := range snap.Devices {
		if dev.BGP == nil {
			return nil, fmt.Errorf("baseline: bonsai requires BGP on every switch (%s)", name)
		}
		if len(dev.BGP.Networks) > 0 {
			r.edge[name] = true
		}
	}
	for name := range snap.Devices {
		if r.edge[name] {
			continue
		}
		for _, nb := range net.Neighbors(name) {
			if r.edge[nb] {
				r.agg[name] = true
				break
			}
		}
	}
	for name := range snap.Devices {
		if !r.edge[name] && !r.agg[name] {
			r.core[name] = true
		}
	}
	// Sanity: cores neighbor only aggs; edges neighbor only aggs.
	for name := range r.core {
		for _, nb := range net.Neighbors(name) {
			if !r.agg[nb] {
				return nil, fmt.Errorf("baseline: %s breaks the FatTree shape (core adjacent to %s)", name, nb)
			}
		}
	}
	for name := range r.edge {
		for _, nb := range net.Neighbors(name) {
			if !r.agg[nb] {
				return nil, fmt.Errorf("baseline: %s breaks the FatTree shape (edge adjacent to %s)", name, nb)
			}
		}
	}
	if len(r.edge) == 0 || len(r.agg) == 0 || len(r.core) == 0 {
		return nil, fmt.Errorf("baseline: topology is not a three-tier FatTree")
	}
	return r, nil
}

// compressed is the 6-node abstraction for one destination (§5.4
// footnote): the destination edge, a same-pod aggregation and edge, one
// core, and a different-pod aggregation and edge.
type compressed struct {
	dest, aggSame, edgeSame, core, aggOther, edgeOther string
}

// compressFor derives the 6 representative nodes for a destination edge
// switch by scanning the real topology — the per-destination cost that
// grows with FatTree size.
func compressFor(net *topology.Network, roles *fatTreeRoles, dest string) (*compressed, error) {
	c := &compressed{dest: dest}
	destAggs := map[string]bool{}
	for _, nb := range net.Neighbors(dest) {
		destAggs[nb] = true
		if c.aggSame == "" {
			c.aggSame = nb
		}
	}
	if c.aggSame == "" {
		return nil, fmt.Errorf("baseline: destination %s has no aggregation neighbors", dest)
	}
	for _, nb := range net.Neighbors(c.aggSame) {
		if roles.edge[nb] && nb != dest {
			c.edgeSame = nb
			break
		}
	}
	for _, nb := range net.Neighbors(c.aggSame) {
		if roles.core[nb] {
			c.core = nb
			break
		}
	}
	if c.core == "" {
		return nil, fmt.Errorf("baseline: aggregation %s reaches no core", c.aggSame)
	}
	for _, nb := range net.Neighbors(c.core) {
		if roles.agg[nb] && !destAggs[nb] && !sharesEdge(net, roles, nb, destAggs) {
			c.aggOther = nb
			break
		}
	}
	if c.aggOther == "" {
		return nil, fmt.Errorf("baseline: no different-pod aggregation reachable from %s", c.core)
	}
	for _, nb := range net.Neighbors(c.aggOther) {
		if roles.edge[nb] {
			c.edgeOther = nb
			break
		}
	}
	if c.edgeSame == "" || c.edgeOther == "" {
		return nil, fmt.Errorf("baseline: pod of %s too small to compress", dest)
	}
	return c, nil
}

// sharesEdge reports whether agg shares a pod (an edge neighbor) with any
// aggregation in the set — used to find a genuinely different pod.
func sharesEdge(net *topology.Network, roles *fatTreeRoles, agg string, destAggs map[string]bool) bool {
	for _, e := range net.Neighbors(agg) {
		if !roles.edge[e] {
			continue
		}
		for _, a := range net.Neighbors(e) {
			if destAggs[a] {
				return true
			}
		}
	}
	return false
}

// buildCompressedTexts generates configurations for the 6-node quotient
// topology: a path edgeSame—aggSame—dest plus aggSame—core—aggOther—edgeOther,
// with the destination announcing the prefix. The destination's real ACLs
// and its host-port bindings are carried over so the abstraction preserves
// filtering behaviour; snap may be nil in tests.
func buildCompressedTexts(c *compressed, prefix route.Prefix, snap *config.Snapshot) map[string]string {
	type link struct{ a, b string }
	links := []link{
		{c.edgeSame, c.aggSame},
		{c.dest, c.aggSame},
		{c.aggSame, c.core},
		{c.core, c.aggOther},
		{c.aggOther, c.edgeOther},
	}
	nodes := []string{c.dest, c.aggSame, c.edgeSame, c.core, c.aggOther, c.edgeOther}
	asn := map[string]uint32{}
	for i, n := range nodes {
		asn[n] = 65001 + uint32(i)
	}
	iface := map[string][]string{}
	neighborLines := map[string][]string{}
	for i, l := range links {
		base := route.MustParseAddr("10.200.0.0") + uint32(i)*2
		iface[l.a] = append(iface[l.a], fmt.Sprintf("interface p%d\n ip address %s/31\n", i, route.FormatAddr(base)))
		iface[l.b] = append(iface[l.b], fmt.Sprintf("interface p%d\n ip address %s/31\n", i, route.FormatAddr(base+1)))
		neighborLines[l.a] = append(neighborLines[l.a], fmt.Sprintf(" neighbor %s remote-as %d\n", route.FormatAddr(base+1), asn[l.b]))
		neighborLines[l.b] = append(neighborLines[l.b], fmt.Sprintf(" neighbor %s remote-as %d\n", route.FormatAddr(base), asn[l.a]))
	}
	texts := map[string]string{}
	for i, n := range nodes {
		cfg := fmt.Sprintf("hostname %s\n", n)
		for _, s := range iface[n] {
			cfg += s
		}
		if n == c.dest {
			cfg += fmt.Sprintf("interface vlan10\n ip address %s/%d\n", route.FormatAddr(prefix.Addr+1), prefix.Len)
			if snap != nil {
				if dev := snap.Devices[c.dest]; dev != nil {
					for _, aclName := range dev.ACLNames() {
						cfg += config.FormatACL(dev.ACLs[aclName])
					}
					// Re-bind host-port ACLs on the quotient's vlan10.
					for _, ifcName := range dev.InterfaceNames() {
						ifc := dev.Interfaces[ifcName]
						if ifc.Subnet != prefix {
							continue
						}
						if ifc.InACL != "" {
							cfg += fmt.Sprintf("interface vlan10\n ip access-group %s in\n", ifc.InACL)
						}
						if ifc.OutACL != "" {
							cfg += fmt.Sprintf("interface vlan10\n ip access-group %s out\n", ifc.OutACL)
						}
					}
				}
			}
		}
		cfg += fmt.Sprintf("router bgp %d\n router-id 0.0.0.%d\n maximum-paths 4\n", asn[n], i+1)
		if n == c.dest {
			cfg += fmt.Sprintf(" network %s\n", prefix)
		}
		for _, s := range neighborLines[n] {
			cfg += s
		}
		texts[n] = cfg
	}
	return texts
}

// RunBonsai checks all-pair reachability the Bonsai way: compress per
// destination prefix, simulate the 6-node network, verify reachability to
// the destination from the in-pod and out-of-pod representatives, all in
// parallel up to the core budget.
func RunBonsai(snap *config.Snapshot, opts BonsaiOptions) (*BonsaiResult, error) {
	if opts.Parallelism <= 0 {
		opts.Parallelism = runtime.GOMAXPROCS(0)
	}
	net, err := topology.Build(snap)
	if err != nil {
		return nil, err
	}
	roles, err := classifyFatTree(snap, net)
	if err != nil {
		return nil, err
	}

	type job struct {
		dest   string
		prefix route.Prefix
	}
	var jobs []job
	for name := range roles.edge {
		for _, p := range snap.Devices[name].BGP.Networks {
			jobs = append(jobs, job{dest: name, prefix: p})
		}
	}
	sort.Slice(jobs, func(i, j int) bool { return jobs[i].prefix.Compare(jobs[j].prefix) < 0 })

	res := &BonsaiResult{Prefixes: len(jobs)}
	start := time.Now()

	var (
		mu           sync.Mutex
		firstErr     error
		compressTime time.Duration
		simTime      time.Duration
		maxRunPeak   int64
	)
	sem := make(chan struct{}, opts.Parallelism)
	var wg sync.WaitGroup
	for _, j := range jobs {
		if opts.Timeout > 0 && time.Since(start) > opts.Timeout {
			mu.Lock()
			firstErr = fmt.Errorf("baseline: bonsai timed out after %v with %d/%d prefixes checked",
				opts.Timeout, res.Reachable, len(jobs))
			mu.Unlock()
			break
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(j job) {
			defer wg.Done()
			defer func() { <-sem }()

			t0 := time.Now()
			comp, err := compressFor(net, roles, j.dest)
			dCompress := time.Since(t0)
			if err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
				return
			}

			t1 := time.Now()
			texts := buildCompressedTexts(comp, j.prefix, snap)
			csnap, err := config.ParseTexts(texts)
			var ok bool
			var peak int64
			if err == nil {
				ok, peak, err = checkCompressed(csnap, comp, j.prefix, opts.MetaBits)
			}
			dSim := time.Since(t1)

			mu.Lock()
			defer mu.Unlock()
			compressTime += dCompress
			simTime += dSim
			if peak > maxRunPeak {
				maxRunPeak = peak
			}
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				return
			}
			if ok {
				res.Reachable++
			} else {
				res.Unreached = append(res.Unreached, j.prefix.String())
			}
		}(j)
	}
	wg.Wait()
	if firstErr != nil {
		return res, firstErr
	}
	res.CompressTime = compressTime
	res.SimTime = simTime
	res.PeakBytes = int64(opts.Parallelism)*maxRunPeak + int64(len(snap.Devices))*256
	sort.Strings(res.Unreached)
	return res, nil
}

// checkCompressed runs the centralized verifier on a compressed network
// and checks that the destination prefix is reachable from both
// representatives.
func checkCompressed(csnap *config.Snapshot, comp *compressed, prefix route.Prefix, metaBits int) (bool, int64, error) {
	bf, err := NewBatfish(csnap, BatfishOptions{MetaBits: metaBits})
	if err != nil {
		return false, 0, err
	}
	if err := bf.RunControlPlane(); err != nil {
		return false, 0, err
	}
	if _, err := bf.ComputeDataPlane(); err != nil {
		return false, 0, err
	}
	q := &dataplane.Query{
		Header:  &dataplane.HeaderSpace{DstPrefix: &prefix},
		Sources: []string{comp.edgeSame, comp.edgeOther},
		Dests:   []string{comp.dest},
	}
	col, err := bf.RunQuery(q, false)
	if err != nil {
		return false, 0, err
	}
	// Both representatives' packets must fully arrive.
	arrived := col.Arrived(comp.dest)
	expected, err := q.Header.Compile(bf.engine)
	if err != nil {
		return false, 0, err
	}
	// Each source injects `expected`; arrival set is their union, which
	// must cover the whole header space for the prefix.
	covered, err := bf.engine.Implies(expected, arrived)
	if err != nil {
		return false, 0, err
	}
	// Loops or blackholes on the compressed paths mean non-reachability.
	clean := col.StateSet(dataplane.Loop) == 0 && col.StateSet(dataplane.Blackhole) == 0
	return covered && clean, bf.PeakBytes(), nil
}
