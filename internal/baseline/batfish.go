// Package baseline implements the two comparison systems of the paper's
// evaluation (§5.2):
//
//   - Batfish: the centralized, single-server simulation-based verifier —
//     one process computes every node's routes and verifies the data plane
//     with a single shared BDD table (the scale-up architecture S2 scales
//     out). Figure 4 also evaluates "Batfish with prefix sharding", so the
//     sharding bolt-on is an option here.
//   - Bonsai: per-destination control plane compression — for a synthesized
//     FatTree and a concrete destination prefix, the network compresses to
//     6 nodes; all-pair reachability runs one compressed simulation per
//     prefix, in parallel, bounded by the core count (§5.4).
package baseline

import (
	"fmt"

	"s2/internal/bdd"
	"s2/internal/bgp"
	"s2/internal/config"
	"s2/internal/dataplane"
	"s2/internal/metrics"
	"s2/internal/ospf"
	"s2/internal/route"
	"s2/internal/shard"
	"s2/internal/topology"
)

// BatfishOptions configures the centralized verifier.
type BatfishOptions struct {
	// Shards > 1 enables the prefix-sharding bolt-on (Figure 4's
	// "Batfish+sharding" configuration).
	Shards int
	// Seed feeds the shard shuffler.
	Seed int64
	// MemoryBudget is the modelled memory budget of the single logical
	// server (0 = unlimited).
	MemoryBudget int64
	// MaxBDDNodes bounds the single shared BDD table (0 = unlimited).
	MaxBDDNodes int
	// MetaBits sizes the packet metadata field.
	MetaBits int
	// MaxRounds guards convergence (default 128).
	MaxRounds int
	// KeepRIBs retains full RIBs for equivalence testing.
	KeepRIBs bool
}

func (o BatfishOptions) maxRounds() int {
	if o.MaxRounds <= 0 {
		return 128
	}
	return o.MaxRounds
}

// Batfish is the centralized verifier instance.
type Batfish struct {
	opts BatfishOptions
	snap *config.Snapshot
	net  *topology.Network

	bgpProcs  map[string]*bgp.Process
	ospfProcs map[string]*ospf.Process

	fibRIBs   map[string]*route.RIB
	finalRIBs map[string]*route.RIB

	layout  dataplane.Layout
	engine  *bdd.Engine
	nodesDP map[string]*dataplane.NodeDP
	adj     dataplane.AdjacencyIndex

	tracker  *metrics.Tracker
	timer    *metrics.PhaseTimer
	cpRounds int
}

// NewBatfish builds the verifier over a parsed snapshot.
func NewBatfish(snap *config.Snapshot, opts BatfishOptions) (*Batfish, error) {
	net, err := topology.Build(snap)
	if err != nil {
		return nil, err
	}
	b := &Batfish{
		opts:      opts,
		snap:      snap,
		net:       net,
		bgpProcs:  map[string]*bgp.Process{},
		ospfProcs: map[string]*ospf.Process{},
		fibRIBs:   map[string]*route.RIB{},
		finalRIBs: map[string]*route.RIB{},
		layout:    dataplane.Layout{MetaBits: opts.MetaBits},
		tracker:   metrics.NewTracker("batfish", opts.MemoryBudget),
		timer:     metrics.NewPhaseTimer(),
	}
	for name, dev := range snap.Devices {
		if dev.BGP != nil {
			b.bgpProcs[name] = bgp.NewProcess(dev, net.Sessions[name], b.tracker)
		}
		if dev.OSPF != nil {
			b.ospfProcs[name] = ospf.NewProcess(dev, net.Adjacencies[name], b.tracker)
		}
		b.fibRIBs[name] = route.NewRIB()
		if opts.KeepRIBs {
			b.finalRIBs[name] = route.NewRIB()
		}
	}
	return b, nil
}

// Timer exposes recorded phases.
func (b *Batfish) Timer() *metrics.PhaseTimer { return b.timer }

// PeakBytes returns the modelled peak memory of the single server.
func (b *Batfish) PeakBytes() int64 { return b.tracker.Peak() }

// CPRounds returns the number of control-plane rounds executed.
func (b *Batfish) CPRounds() int { return b.cpRounds }

// RunControlPlane simulates OSPF then BGP to their fixed points, using the
// same two-phase (gather/apply) rounds as S2's workers so both systems
// compute identical RIBs (§5.3).
func (b *Batfish) RunControlPlane() error {
	if len(b.ospfProcs) > 0 {
		if err := b.timer.Time("cp-ospf", b.runOSPF); err != nil {
			return err
		}
	}
	if len(b.bgpProcs) == 0 {
		return nil
	}

	var shards []*shard.Shard
	if b.opts.Shards > 1 {
		dpdg := shard.BuildDPDG(b.snap)
		var err error
		shards, err = shard.MakeShards(dpdg, b.opts.Shards, b.opts.Seed)
		if err != nil {
			return err
		}
	} else {
		shards = []*shard.Shard{nil}
	}

	return b.timer.Time("cp-bgp", func() error {
		for i, sh := range shards {
			var filter bgp.PrefixFilter
			if sh != nil {
				filter = sh.Contains
			}
			for name, proc := range b.bgpProcs {
				proc.ResetForShard(filter)
				if op, ok := b.ospfProcs[name]; ok {
					proc.SetExternalRoutes("ospf", op.Routes().All())
				}
			}
			if err := b.runBGPShard(i); err != nil {
				return err
			}
			b.harvestShard()
		}
		return nil
	})
}

func (b *Batfish) runOSPF() error {
	pulls := map[[2]string]*pullState{}
	for round := 0; ; round++ {
		if round > b.opts.maxRounds() {
			return fmt.Errorf("baseline: OSPF did not converge")
		}
		b.cpRounds++
		pending := map[string][]*ospf.LSA{}
		for _, name := range b.snap.DeviceNames() {
			proc, ok := b.ospfProcs[name]
			if !ok {
				continue
			}
			for _, nb := range proc.NeighborNames() {
				exp, ok := b.ospfProcs[nb]
				if !ok {
					continue
				}
				st := getPull(pulls, name, nb)
				lsas, ver, fresh := exp.LSAsTo(name, st.version, st.seen)
				if fresh {
					st.version, st.seen = ver, true
					pending[name] = append(pending[name], lsas...)
				}
			}
		}
		changed := false
		for _, name := range b.snap.DeviceNames() {
			proc, ok := b.ospfProcs[name]
			if !ok {
				continue
			}
			merged := proc.MergeLSAs(pending[name])
			if merged || proc.Routes().Len() == 0 {
				if proc.RunSPF() {
					changed = true
				}
			}
			if merged {
				changed = true
			}
		}
		if err := b.tracker.CheckBudget(); err != nil {
			return err
		}
		if !changed {
			return nil
		}
	}
}

type pullState struct {
	version uint64
	seen    bool
}

func getPull(m map[[2]string]*pullState, a, bn string) *pullState {
	key := [2]string{a, bn}
	st, ok := m[key]
	if !ok {
		st = &pullState{}
		m[key] = st
	}
	return st
}

func (b *Batfish) runBGPShard(idx int) error {
	pulls := map[[2]string]*pullState{}
	needsRun := map[string]bool{}
	for name := range b.bgpProcs {
		needsRun[name] = true
	}
	for round := 0; ; round++ {
		if round > b.opts.maxRounds() {
			return fmt.Errorf("baseline: BGP shard %d did not converge in %d rounds", idx, b.opts.maxRounds())
		}
		b.cpRounds++
		// Gather (Jacobi phase 1).
		pending := map[string]map[string][]bgp.Advertisement{}
		for _, name := range b.snap.DeviceNames() {
			proc, ok := b.bgpProcs[name]
			if !ok {
				continue
			}
			for _, nb := range proc.NeighborNames() {
				exp, ok := b.bgpProcs[nb]
				if !ok {
					continue
				}
				st := getPull(pulls, name, nb)
				advs, ver, fresh := exp.ExportsTo(name, st.version, st.seen)
				if !fresh {
					continue
				}
				st.version, st.seen = ver, true
				if pending[name] == nil {
					pending[name] = map[string][]bgp.Advertisement{}
				}
				pending[name][nb] = advs
			}
		}
		// Apply (phase 2).
		changed := false
		for _, name := range b.snap.DeviceNames() {
			proc, ok := b.bgpProcs[name]
			if !ok {
				continue
			}
			for nb, advs := range pending[name] {
				if proc.ImportFrom(nb, advs) {
					needsRun[name] = true
				}
			}
			if needsRun[name] {
				needsRun[name] = false
				if proc.RunDecision() {
					changed = true
				}
			}
		}
		if err := b.tracker.CheckBudget(); err != nil {
			return err
		}
		if !changed {
			return nil
		}
	}
}

func liteRoute(r *route.Route) *route.Route {
	return &route.Route{
		Prefix:      r.Prefix,
		Protocol:    r.Protocol,
		NextHop:     r.NextHop,
		NextHopNode: r.NextHopNode,
	}
}

func (b *Batfish) harvestShard() {
	for name, proc := range b.bgpProcs {
		rib := proc.LocRIB()
		rib.Walk(func(p route.Prefix, rs []*route.Route) {
			lites := make([]*route.Route, len(rs))
			for i, r := range rs {
				lites[i] = liteRoute(r)
			}
			b.fibRIBs[name].SetRoutes(p, lites)
			if b.opts.KeepRIBs {
				b.finalRIBs[name].SetRoutes(p, rs)
			}
		})
		proc.ResetForShard(nil)
	}
	var bytes int64
	for _, rib := range b.fibRIBs {
		bytes += int64(rib.RouteCount()) * route.LiteModelBytes
	}
	b.tracker.Set("fib.accum", bytes)
}

// RIBs returns the merged full RIBs (requires KeepRIBs).
func (b *Batfish) RIBs() (map[string]*route.RIB, error) {
	if !b.opts.KeepRIBs {
		return nil, fmt.Errorf("baseline: KeepRIBs disabled")
	}
	return b.finalRIBs, nil
}

// ComputeDataPlane builds every node's FIB and predicates on the single
// shared BDD engine — the centralized architecture whose node table and
// lock S2's per-worker engines avoid (§4.3).
func (b *Batfish) ComputeDataPlane() ([]string, error) {
	var warnings []string
	err := b.timer.Time("dp-compute", func() error {
		b.engine = b.layout.NewEngine(b.opts.MaxBDDNodes)
		b.engine.SetGrowObserver(func(delta int) {
			b.tracker.Add("bdd", int64(delta)*bdd.NodeModelBytes)
		})
		b.nodesDP = map[string]*dataplane.NodeDP{}
		b.adj = dataplane.BuildAdjacencyIndex(b.net)
		for _, name := range b.snap.DeviceNames() {
			dev := b.snap.Devices[name]
			var ribs []*route.RIB
			ribs = append(ribs, b.fibRIBs[name])
			if op, ok := b.ospfProcs[name]; ok {
				ribs = append(ribs, op.Routes())
			}
			fib, errs := dataplane.BuildFIB(dev, ribs...)
			for _, e := range errs {
				warnings = append(warnings, e.Error())
			}
			n, err := dataplane.CompileNode(b.engine, dev, fib)
			if err != nil {
				return err
			}
			b.nodesDP[name] = n
		}
		return b.tracker.CheckBudget()
	})
	return warnings, err
}

// OwnedPrefixes mirrors the controller's notion of destination ownership.
func (b *Batfish) OwnedPrefixes(node string) []route.Prefix {
	dev := b.snap.Devices[node]
	if dev == nil || dev.BGP == nil {
		return nil
	}
	return dev.BGP.Networks
}

// PrefixOwners lists nodes originating prefixes.
func (b *Batfish) PrefixOwners() []string {
	var out []string
	for _, name := range b.snap.DeviceNames() {
		if len(b.OwnedPrefixes(name)) > 0 {
			out = append(out, name)
		}
	}
	return out
}

// RunQuery executes one query on the centralized engine, injecting at each
// source and traversing sequentially (one BDD table, one operation at a
// time — §2.2's parallelism limit).
func (b *Batfish) RunQuery(q *dataplane.Query, constrainSrc bool) (*dataplane.Collector, error) {
	if b.nodesDP == nil {
		return nil, fmt.Errorf("baseline: ComputeDataPlane must run before queries")
	}
	if err := q.Validate(b.layout); err != nil {
		return nil, err
	}
	sources := q.Sources
	if len(sources) == 0 {
		sources = b.PrefixOwners()
	}
	for name, n := range b.nodesDP {
		n.MetaBit = q.MetaBitFor(name)
	}
	var isDest func(string) bool
	if len(q.Dests) > 0 {
		set := map[string]bool{}
		for _, d := range q.Dests {
			set[d] = true
		}
		isDest = func(n string) bool { return set[n] }
	}
	col := dataplane.NewCollector(b.engine, q)
	err := b.timer.Time("dp-forward", func() error {
		base, err := q.Header.Compile(b.engine)
		if err != nil {
			return err
		}
		for _, src := range sources {
			pkt := base
			if constrainSrc {
				srcSet := bdd.False
				for _, p := range b.OwnedPrefixes(src) {
					m, err := dataplane.PrefixMatch(b.engine, dataplane.OffSrcIP, p)
					if err != nil {
						return err
					}
					srcSet, err = b.engine.Or(srcSet, m)
					if err != nil {
						return err
					}
				}
				if srcSet != bdd.False {
					pkt, err = b.engine.And(base, srcSet)
					if err != nil {
						return err
					}
				}
			}
			if pkt == bdd.False {
				continue
			}
			if err := dataplane.Traverse(b.engine, b.nodesDP, b.adj, src, pkt,
				q.EffectiveMaxHops(), isDest, col.Add); err != nil {
				return err
			}
			if err := b.tracker.CheckBudget(); err != nil {
				return err
			}
			// The single shared BDD table is collected only between
			// sources: intra-traversal garbage accumulates in the one
			// table, the §2.2 centralized cost S2's per-worker engines
			// avoid. (base is re-derived from query state, so it need
			// not stay live across the GC.)
			base, err = b.gcQuery(col, q)
			if err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return col, nil
}

// gcQuery collects the shared engine between per-source traversals,
// remapping node predicates and collector state, and recompiles the query's
// base header packet in the compacted table.
func (b *Batfish) gcQuery(col *dataplane.Collector, q *dataplane.Query) (bdd.Ref, error) {
	var roots []bdd.Ref
	for _, n := range b.nodesDP {
		roots = append(roots, n.RootRefs()...)
	}
	roots = append(roots, col.RootRefs()...)
	remap := b.engine.GC(roots)
	for _, n := range b.nodesDP {
		n.Remap(remap)
	}
	col.Remap(remap)
	return q.Header.Compile(b.engine)
}

// AllPairsResult mirrors core.AllPairsResult for the baseline.
type AllPairsResult struct {
	Collector  *dataplane.Collector
	Unreached  []string
	Violations []dataplane.Violation
}

// CheckAllPairs runs the paper's default property on the baseline.
func (b *Batfish) CheckAllPairs() (*AllPairsResult, error) {
	owners := b.PrefixOwners()
	if len(owners) == 0 {
		return nil, fmt.Errorf("baseline: no prefix owners")
	}
	var allOwned []route.Prefix
	for _, o := range owners {
		allOwned = append(allOwned, b.OwnedPrefixes(o)...)
	}
	q := &dataplane.Query{
		Header:  &dataplane.HeaderSpace{DstIn: allOwned},
		Sources: owners,
		Dests:   owners,
	}
	col, err := b.RunQuery(q, true)
	if err != nil {
		return nil, err
	}
	res := &AllPairsResult{Collector: col}
	srcUnion := bdd.False
	for _, p := range allOwned {
		m, err := dataplane.PrefixMatch(b.engine, dataplane.OffSrcIP, p)
		if err != nil {
			return nil, err
		}
		srcUnion, err = b.engine.Or(srcUnion, m)
		if err != nil {
			return nil, err
		}
	}
	for _, d := range owners {
		dstSet := bdd.False
		for _, p := range b.OwnedPrefixes(d) {
			m, err := dataplane.PrefixMatch(b.engine, dataplane.OffDstIP, p)
			if err != nil {
				return nil, err
			}
			dstSet, err = b.engine.Or(dstSet, m)
			if err != nil {
				return nil, err
			}
		}
		expected, err := b.engine.And(dstSet, srcUnion)
		if err != nil {
			return nil, err
		}
		covered, err := b.engine.Implies(expected, col.Arrived(d))
		if err != nil {
			return nil, err
		}
		if !covered {
			res.Unreached = append(res.Unreached, d)
		}
	}
	res.Violations, err = col.Report()
	return res, err
}
