package topology

import (
	"strings"
	"testing"

	"s2/internal/config"
	"s2/internal/route"
)

// triangle builds three routers connected pairwise with /31 links and eBGP.
func triangleTexts() map[string]string {
	return map[string]string{
		"r1.cfg": `hostname r1
interface eth0
 ip address 10.0.0.0/31
interface eth1
 ip address 10.0.1.0/31
router bgp 65001
 router-id 1.1.1.1
 neighbor 10.0.0.1 remote-as 65002
 neighbor 10.0.1.1 remote-as 65003
`,
		"r2.cfg": `hostname r2
interface eth0
 ip address 10.0.0.1/31
interface eth1
 ip address 10.0.2.0/31
router bgp 65002
 router-id 2.2.2.2
 neighbor 10.0.0.0 remote-as 65001
 neighbor 10.0.2.1 remote-as 65003
`,
		"r3.cfg": `hostname r3
interface eth0
 ip address 10.0.1.1/31
interface eth1
 ip address 10.0.2.1/31
router bgp 65003
 router-id 3.3.3.3
 neighbor 10.0.1.0 remote-as 65001
 neighbor 10.0.2.0 remote-as 65002
`,
	}
}

func buildTriangle(t *testing.T) *Network {
	t.Helper()
	snap, err := config.ParseTexts(triangleTexts())
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	net, err := Build(snap)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return net
}

func TestBuildAdjacency(t *testing.T) {
	net := buildTriangle(t)
	if len(net.Warnings) != 0 {
		t.Fatalf("unexpected warnings: %v", net.Warnings)
	}
	if got := net.Neighbors("r1"); len(got) != 2 || got[0] != "r2" || got[1] != "r3" {
		t.Fatalf("r1 neighbors = %v", got)
	}
	if net.EdgeCount() != 3 {
		t.Fatalf("edges = %d, want 3", net.EdgeCount())
	}
	adj := net.Adjacencies["r1"][0]
	if adj.Neighbor != "r2" || adj.LocalIfc != "eth0" || adj.RemoteIfc != "eth0" {
		t.Errorf("adjacency = %+v", adj)
	}
	if adj.LocalIP != route.MustParseAddr("10.0.0.0") || adj.RemoteIP != route.MustParseAddr("10.0.0.1") {
		t.Errorf("adjacency IPs = %+v", adj)
	}
}

func TestBuildSessions(t *testing.T) {
	net := buildTriangle(t)
	ss := net.Sessions["r1"]
	if len(ss) != 2 {
		t.Fatalf("r1 sessions = %+v", ss)
	}
	s := ss[0]
	if s.Remote != "r2" || s.LocalAS != 65001 || s.RemoteAS != 65002 || !s.EBGP() {
		t.Errorf("session = %+v", s)
	}
}

func TestBuildWarnings(t *testing.T) {
	texts := triangleTexts()
	// Break r1's neighbor: wrong remote-as.
	texts["r1.cfg"] = strings.Replace(texts["r1.cfg"],
		"neighbor 10.0.0.1 remote-as 65002", "neighbor 10.0.0.1 remote-as 64999", 1)
	snap, err := config.ParseTexts(texts)
	if err != nil {
		t.Fatal(err)
	}
	net, err := Build(snap)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, w := range net.Warnings {
		if strings.Contains(w, "remote-as 64999") {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected AS mismatch warning, got %v", net.Warnings)
	}
	// The broken session must not be created on r1's side...
	if len(net.Sessions["r1"]) != 1 {
		t.Errorf("r1 sessions = %+v", net.Sessions["r1"])
	}
	// ...and r2 still points at r1 with a now one-sided config; r2's
	// statement still resolves (r2 names r1's correct AS).
	if len(net.Sessions["r2"]) != 2 {
		t.Errorf("r2 sessions = %+v", net.Sessions["r2"])
	}
}

func TestBuildUnresolvableNeighbor(t *testing.T) {
	snap, err := config.ParseTexts(map[string]string{"r1.cfg": `hostname r1
interface eth0
 ip address 10.0.0.0/31
router bgp 65001
 neighbor 10.9.9.9 remote-as 65002
`})
	if err != nil {
		t.Fatal(err)
	}
	net, err := Build(snap)
	if err != nil {
		t.Fatal(err)
	}
	if len(net.Warnings) != 1 || !strings.Contains(net.Warnings[0], "does not resolve") {
		t.Fatalf("warnings = %v", net.Warnings)
	}
}

func TestBuildEmptySnapshot(t *testing.T) {
	if _, err := Build(&config.Snapshot{}); err == nil {
		t.Fatal("empty snapshot should error")
	}
}

func TestShutdownInterfaceExcluded(t *testing.T) {
	texts := triangleTexts()
	texts["r2.cfg"] = strings.Replace(texts["r2.cfg"],
		"interface eth0\n ip address 10.0.0.1/31",
		"interface eth0\n ip address 10.0.0.1/31\n shutdown", 1)
	snap, _ := config.ParseTexts(texts)
	net, err := Build(snap)
	if err != nil {
		t.Fatal(err)
	}
	for _, nb := range net.Neighbors("r1") {
		if nb == "r2" {
			t.Fatal("shutdown link must not create adjacency")
		}
	}
}

func TestGraph(t *testing.T) {
	net := buildTriangle(t)
	g := net.Graph(nil)
	if len(g.Nodes) != 3 || g.TotalNodeWeight() != 3 {
		t.Fatalf("graph nodes = %v", g.Nodes)
	}
	if len(g.EdgeWeights) != 3 {
		t.Fatalf("edge weights = %v", g.EdgeWeights)
	}
	i, j := g.Index["r1"], g.Index["r2"]
	if g.EdgeWeight(i, j) != 1 || g.EdgeWeight(j, i) != 1 {
		t.Error("edge weight symmetric lookup")
	}
	// Custom loads.
	g2 := net.Graph(func(d string) int64 {
		if d == "r1" {
			return 10
		}
		return 0 // clamped to 1
	})
	if g2.NodeWeights[g2.Index["r1"]] != 10 || g2.NodeWeights[g2.Index["r2"]] != 1 {
		t.Errorf("node weights = %v", g2.NodeWeights)
	}
}

func TestLoopbacksDoNotCreateAdjacency(t *testing.T) {
	snap, err := config.ParseTexts(map[string]string{
		"a.cfg": "hostname a\ninterface lo0\n ip address 192.168.0.1/32\n",
		"b.cfg": "hostname b\ninterface lo0\n ip address 192.168.0.1/32\n",
	})
	if err != nil {
		t.Fatal(err)
	}
	net, err := Build(snap)
	if err != nil {
		t.Fatal(err)
	}
	if net.EdgeCount() != 0 {
		t.Fatal("duplicate /32 loopbacks must not become links")
	}
}
