// Package topology derives the network graph from parsed device
// configurations: layer-3 adjacencies from shared interface subnets, and
// resolved BGP peering sessions from neighbor statements. The partitioner
// and both simulation engines consume this graph.
package topology

import (
	"fmt"
	"sort"

	"s2/internal/config"
	"s2/internal/route"
)

// Adjacency is one directed view of a layer-3 link: the local device can
// reach Neighbor through LocalIfc.
type Adjacency struct {
	Neighbor  string
	LocalIfc  string
	RemoteIfc string
	LocalIP   uint32
	RemoteIP  uint32
	Subnet    route.Prefix
}

// BGPSession is one resolved eBGP/iBGP peering between two devices.
type BGPSession struct {
	Local, Remote       string
	LocalIP, RemoteIP   uint32
	LocalIfc, RemoteIfc string
	// LocalAS/RemoteAS are the configured AS numbers; EBGP reports
	// whether they differ.
	LocalAS, RemoteAS uint32
}

// EBGP reports whether the session crosses AS boundaries.
func (s BGPSession) EBGP() bool { return s.LocalAS != s.RemoteAS }

// Network is the derived topology over a configuration snapshot.
type Network struct {
	Devices map[string]*config.Device
	// Adjacencies maps device → sorted layer-3 neighbors.
	Adjacencies map[string][]Adjacency
	// Sessions maps device → sorted resolved BGP sessions.
	Sessions map[string][]BGPSession
	// Warnings records non-fatal inconsistencies found while resolving
	// the topology (unresolvable neighbors, AS mismatches), the kind of
	// misconfiguration a verifier surfaces rather than hides.
	Warnings []string
}

// ifaceAddr locates interfaces by address for neighbor resolution.
type ifaceAddr struct {
	device string
	ifc    *config.Interface
}

// Build derives the topology from a snapshot.
func Build(snap *config.Snapshot) (*Network, error) {
	if len(snap.Devices) == 0 {
		return nil, fmt.Errorf("topology: empty snapshot")
	}
	n := &Network{
		Devices:     snap.Devices,
		Adjacencies: make(map[string][]Adjacency, len(snap.Devices)),
		Sessions:    make(map[string][]BGPSession, len(snap.Devices)),
	}

	// Group addressed, enabled interfaces by subnet.
	bySubnet := map[route.Prefix][]ifaceAddr{}
	byIP := map[uint32][]ifaceAddr{}
	for _, name := range snap.DeviceNames() {
		dev := snap.Devices[name]
		for _, ifcName := range dev.InterfaceNames() {
			ifc := dev.Interfaces[ifcName]
			if ifc.Shutdown || ifc.IP == 0 {
				continue
			}
			ia := ifaceAddr{device: name, ifc: ifc}
			bySubnet[ifc.Subnet] = append(bySubnet[ifc.Subnet], ia)
			byIP[ifc.IP] = append(byIP[ifc.IP], ia)
		}
	}

	// Pairwise adjacency inside each subnet (point-to-point /31s in DCNs,
	// but multi-access subnets work too).
	for subnet, members := range bySubnet {
		if subnet.Len == 32 {
			continue // loopbacks
		}
		for i := 0; i < len(members); i++ {
			for j := 0; j < len(members); j++ {
				if i == j || members[i].device == members[j].device {
					continue
				}
				a, b := members[i], members[j]
				n.Adjacencies[a.device] = append(n.Adjacencies[a.device], Adjacency{
					Neighbor:  b.device,
					LocalIfc:  a.ifc.Name,
					RemoteIfc: b.ifc.Name,
					LocalIP:   a.ifc.IP,
					RemoteIP:  b.ifc.IP,
					Subnet:    subnet,
				})
			}
		}
	}
	for dev := range n.Adjacencies {
		adj := n.Adjacencies[dev]
		sort.Slice(adj, func(i, j int) bool {
			if adj[i].Neighbor != adj[j].Neighbor {
				return adj[i].Neighbor < adj[j].Neighbor
			}
			return adj[i].LocalIfc < adj[j].LocalIfc
		})
	}

	// Resolve BGP sessions from neighbor statements.
	for _, name := range snap.DeviceNames() {
		dev := snap.Devices[name]
		if dev.BGP == nil {
			continue
		}
		for _, nb := range dev.BGP.SortedNeighbors() {
			peers := byIP[nb.PeerIP]
			var peer *ifaceAddr
			for i := range peers {
				if peers[i].device != name {
					peer = &peers[i]
					break
				}
			}
			if peer == nil {
				n.Warnings = append(n.Warnings, fmt.Sprintf(
					"%s: bgp neighbor %s does not resolve to any device interface",
					name, route.FormatAddr(nb.PeerIP)))
				continue
			}
			peerDev := snap.Devices[peer.device]
			if peerDev.BGP == nil {
				n.Warnings = append(n.Warnings, fmt.Sprintf(
					"%s: bgp neighbor %s resolves to %s which runs no BGP",
					name, route.FormatAddr(nb.PeerIP), peer.device))
				continue
			}
			if peerDev.BGP.ASN != nb.RemoteAS {
				n.Warnings = append(n.Warnings, fmt.Sprintf(
					"%s: bgp neighbor %s remote-as %d but %s is AS %d",
					name, route.FormatAddr(nb.PeerIP), nb.RemoteAS, peer.device, peerDev.BGP.ASN))
				continue
			}
			// Find the local interface facing the peer.
			local := snap.Devices[name].InterfaceForAddr(nb.PeerIP)
			if local == nil {
				n.Warnings = append(n.Warnings, fmt.Sprintf(
					"%s: no local interface on the subnet of bgp neighbor %s",
					name, route.FormatAddr(nb.PeerIP)))
				continue
			}
			n.Sessions[name] = append(n.Sessions[name], BGPSession{
				Local:     name,
				Remote:    peer.device,
				LocalIP:   local.IP,
				RemoteIP:  nb.PeerIP,
				LocalIfc:  local.Name,
				RemoteIfc: peer.ifc.Name,
				LocalAS:   dev.BGP.ASN,
				RemoteAS:  nb.RemoteAS,
			})
		}
	}
	for dev := range n.Sessions {
		ss := n.Sessions[dev]
		sort.Slice(ss, func(i, j int) bool { return ss[i].RemoteIP < ss[j].RemoteIP })
	}
	return n, nil
}

// DeviceNames returns device names in sorted order.
func (n *Network) DeviceNames() []string {
	names := make([]string, 0, len(n.Devices))
	for name := range n.Devices {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Neighbors returns the distinct adjacent device names of dev, sorted.
func (n *Network) Neighbors(dev string) []string {
	seen := map[string]bool{}
	var out []string
	for _, a := range n.Adjacencies[dev] {
		if !seen[a.Neighbor] {
			seen[a.Neighbor] = true
			out = append(out, a.Neighbor)
		}
	}
	sort.Strings(out)
	return out
}

// EdgeCount returns the number of undirected device-level links.
func (n *Network) EdgeCount() int {
	total := 0
	for dev := range n.Adjacencies {
		total += len(n.Neighbors(dev))
	}
	return total / 2
}

// Graph is the weighted undirected graph view used by the partitioner:
// NodeWeights estimate per-node simulation load (route count), EdgeWeights
// estimate inter-node communication volume.
type Graph struct {
	Nodes       []string
	Index       map[string]int
	Adj         [][]int // adjacency by node index, sorted
	NodeWeights []int64
	EdgeWeights map[[2]int]int64 // key: (min,max) node index pair
}

// Graph builds the partitioner's view. loadOf estimates the per-node load;
// nil means uniform load.
func (n *Network) Graph(loadOf func(device string) int64) *Graph {
	g := &Graph{
		Nodes:       n.DeviceNames(),
		Index:       make(map[string]int),
		EdgeWeights: make(map[[2]int]int64),
	}
	for i, name := range g.Nodes {
		g.Index[name] = i
	}
	g.Adj = make([][]int, len(g.Nodes))
	g.NodeWeights = make([]int64, len(g.Nodes))
	for i, name := range g.Nodes {
		if loadOf != nil {
			g.NodeWeights[i] = loadOf(name)
		} else {
			g.NodeWeights[i] = 1
		}
		if g.NodeWeights[i] < 1 {
			g.NodeWeights[i] = 1
		}
		for _, nb := range n.Neighbors(name) {
			j := g.Index[nb]
			g.Adj[i] = append(g.Adj[i], j)
			key := edgeKey(i, j)
			// Parallel links between a device pair add weight once per
			// adjacency entry; count from the lower-index side only to
			// avoid double charging.
			if i < j {
				g.EdgeWeights[key] += int64(countAdj(n, name, nb))
			}
		}
	}
	return g
}

func countAdj(n *Network, a, b string) int {
	c := 0
	for _, adj := range n.Adjacencies[a] {
		if adj.Neighbor == b {
			c++
		}
	}
	return c
}

func edgeKey(i, j int) [2]int {
	if i < j {
		return [2]int{i, j}
	}
	return [2]int{j, i}
}

// EdgeWeight returns the weight of the undirected edge (i, j).
func (g *Graph) EdgeWeight(i, j int) int64 { return g.EdgeWeights[edgeKey(i, j)] }

// TotalNodeWeight sums all node weights.
func (g *Graph) TotalNodeWeight() int64 {
	var t int64
	for _, w := range g.NodeWeights {
		t += w
	}
	return t
}
