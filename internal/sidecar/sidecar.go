// Package sidecar is the communication layer of S2 (§3.2, "Sidecars"):
// every worker exposes one RPC endpoint used by the controller (to
// orchestrate phases) and by peer workers (to pull routes for shadow nodes
// and to deliver symbolic packets). The controller and each worker hold a
// directory of clients, mirroring the paper's per-server sidecar processes
// that route requests by a node→worker map.
//
// The wire protocol is Go's net/rpc with gob encoding — the stdlib
// equivalent of the paper's gRPC + Java serialization choice (§5.1). The
// same WorkerAPI interface is implemented by the in-process worker (direct
// calls, one goroutine pool per worker) and by the RemoteWorker RPC client
// (workers in separate OS processes via cmd/s2worker), so the controller
// code is transport-agnostic.
package sidecar

import (
	"errors"
	"fmt"
	"net"
	"net/rpc"
	"sync"
	"sync/atomic"
	"time"

	"s2/internal/bgp"
	"s2/internal/dataplane"
	"s2/internal/obs"
	"s2/internal/ospf"
	"s2/internal/route"
	"s2/internal/topology"
)

// TraceContext is the cross-process span identity carried on every sidecar
// request (see obs.TraceContext): the caller's in-flight span, under which
// the server side parents the spans it creates while serving the call.
// The zero value — what legacy callers effectively send — means "no
// parent". The alias keeps request structs self-describing while obs owns
// the propagation semantics.
type TraceContext = obs.TraceContext

// CallMeta replaces Empty as the argument of void RPCs so they can carry a
// TraceContext. gob tolerates the change in both directions: old callers'
// Empty decodes as the zero CallMeta, and old servers ignore the TC field.
type CallMeta struct {
	TC TraceContext
}

// ErrDraining is returned to RPCs that arrive while the server is shutting
// down gracefully. Callers should treat the worker as gone (the fault layer
// classifies it as transient).
var ErrDraining = errors.New("sidecar: server draining")

// SetupRequest initializes a worker with its segment of the network.
type SetupRequest struct {
	// WorkerID is this worker's index; Assignment maps every node in the
	// network to its worker (shadow-node routing table).
	WorkerID   int
	Assignment map[string]int
	// Configs holds the raw configuration text of each LOCAL device; the
	// worker parses them into switch models.
	Configs map[string]string
	// Adjacencies and Sessions cover local devices (they reference remote
	// neighbors by name).
	Adjacencies map[string][]topology.Adjacency
	Sessions    map[string][]topology.BGPSession
	// MetaBits sizes the BDD layout; MaxBDDNodes bounds the node table
	// (0 = unlimited).
	MetaBits    int
	MaxBDDNodes int
	// MemoryBudget is the modelled per-worker memory budget in bytes
	// (0 = unlimited).
	MemoryBudget int64
	// PeerAddrs lists the RPC address of every worker (by worker index)
	// for worker-to-worker calls; empty strings mean "local" (in-process
	// mode wires peers directly instead).
	PeerAddrs []string
	// SpillDir, when non-empty, enables writing per-shard results to
	// disk between shard rounds (§3.1, "write it to persistent storage").
	SpillDir string
	// KeepRIBs retains full per-node RIBs in memory for CollectRIBs
	// (equivalence testing); disable for large runs.
	KeepRIBs bool
	// RPCTimeout and RPCRetries configure the fault policy the worker
	// applies to its own peer-to-peer calls (route pulls, packet
	// deliveries). Zero values mean no deadline / no retries.
	RPCTimeout time.Duration
	RPCRetries int
	// Parallelism bounds the worker's per-node goroutine pool for the
	// simulation phases (Gather*/Apply*/ComputeDP/DPRound). <= 0 falls back
	// to the worker's own default (the s2worker -procs flag, else 1), so
	// controllers predating this field leave old workers sequential.
	Parallelism int
	// DisableBatchPulls turns off coalescing of shadow-node pulls into
	// per-owner PullBGPBatch/PullLSABatch round trips (the zero value keeps
	// batching ON).
	DisableBatchPulls bool
	// DisableWireDedup turns off the shared-substrate wire codec for
	// cross-worker packet delivery (DeliverBatch with per-peer incremental
	// node dedup), reverting to one independently-serialized BDD per
	// packet (the zero value keeps dedup ON).
	DisableWireDedup bool
	// GCStress forces the worker's BDD GC pacer to collect at every safe
	// point where the table grew at all — a smoke-test knob that maximizes
	// collection count so relocation and pacing bugs surface; results must
	// stay byte-identical. GCWipe reverts the engine to the seed
	// collector's cache behavior (op cache wiped on every collection) as
	// the A/B baseline for GC benchmarks. Both default off; gob tolerates
	// the new fields in mixed fleets (old workers ignore them).
	GCStress bool
	GCWipe   bool
	// TC parents the worker's setup span under the caller's RPC span.
	TC TraceContext
}

// BeginShardRequest starts a prefix-shard round. An empty prefix list means
// "no filter" (single-shard operation).
type BeginShardRequest struct {
	Index    int
	Prefixes []route.Prefix
	TC       TraceContext
}

// ConditionReport names a prefix-list consulted by conditional
// advertisement on a device during a shard round — the runtime dependency
// signal of §7.
type ConditionReport struct {
	Device     string
	PrefixList string
}

// EndShardReply summarizes a completed shard round.
type EndShardReply struct {
	Routes     int   // routes computed in this shard across local nodes
	ModelBytes int64 // current modelled memory after the shard was spilled
	// Conditions lists the conditional-advertisement prefix-lists local
	// nodes consulted, for runtime dependency detection.
	Conditions []ConditionReport
}

// ApplyReply reports whether any local node changed state this round, plus
// the per-iteration progress the controller streams to its live run view:
// how many local nodes changed and how many routes are settled in local
// RIBs after the round (§5's convergence attribution).
type ApplyReply struct {
	Changed bool
	// ChangedNodes counts local nodes whose state changed this round.
	ChangedNodes int
	// Routes counts routes currently installed across local per-protocol
	// RIBs (BGP Loc-RIBs for ApplyBGP, OSPF route tables for ApplyOSPF).
	Routes int
}

// PullBGPRequest relays a shadow node's route pull to the real node.
type PullBGPRequest struct {
	Exporter string
	Puller   string
	Since    uint64
	Seen     bool
	TC       TraceContext
}

// PullBGPReply carries the exported advertisements.
type PullBGPReply struct {
	Advs    []bgp.Advertisement
	Version uint64
	Fresh   bool
}

// PullLSAsRequest relays a shadow node's LSA pull.
type PullLSAsRequest struct {
	Exporter string
	Puller   string
	Since    uint64
	Seen     bool
	TC       TraceContext
}

// PullLSAsReply carries the flooded LSAs.
type PullLSAsReply struct {
	LSAs    []*ospf.LSA
	Version uint64
	Fresh   bool
}

// PullBGPBatchReply carries one reply per request of a coalesced pull, in
// request order. Batching turns the per-shadow-node round trips of one CP
// iteration into a single RPC per remote owner.
type PullBGPBatchReply struct {
	Replies []PullBGPReply
}

// PullLSABatchReply is the LSA analogue of PullBGPBatchReply.
type PullLSABatchReply struct {
	Replies []PullLSAsReply
}

// PullWireReply carries a batch-pull reply set as one compact varint
// payload (wirecodec.go) instead of gob-encoded structs — the control-plane
// analogue of the data plane's shared-substrate wire codec. Workers fall
// back to the gob batch RPCs against peers that predate it.
type PullWireReply struct {
	Payload []byte
}

// DeltaRequest applies a configuration delta to a worker's resident state:
// re-parse and swap the named LOCAL devices in place (rebuilding their BGP
// processes) and drop routes for prefixes that no longer exist anywhere in
// the network. It deliberately does NOT touch OSPF state — any change that
// could affect OSPF classifies as a topology change and takes the full
// re-Setup path instead.
type DeltaRequest struct {
	// Configs holds the new raw configuration text of changed local
	// devices, keyed by hostname.
	Configs map[string]string
	// PurgePrefixes lists prefixes originated under the previous snapshot
	// but by no device under the new one; every worker removes them from
	// its resident per-node RIBs (results accumulate per prefix, so
	// nothing else would ever overwrite them).
	PurgePrefixes []route.Prefix
	TC            TraceContext
}

// DeltaReply reports what the worker swapped.
type DeltaReply struct {
	// Devices is the number of local device models replaced.
	Devices int
}

// ComputeDPReply summarizes FIB and predicate compilation.
type ComputeDPReply struct {
	FIBEntries int
	BDDNodes   int
	Errors     []string
}

// QueryRequest configures one property query on the workers.
type QueryRequest struct {
	Query dataplane.Query
	TC    TraceContext
}

// QueryBatchRequest configures one multi-query symbolic pass: every query
// shares the pass's transit metadata bits and TTL (dataplane.BatchCompatible),
// while injected packets carry dataplane.QueryTag(i) source prefixes so the
// wavefront keeps per-query packets in distinct slots. Workers that predate
// this RPC reject it with the net/rpc unknown-method error; the controller
// falls back to sequential per-query passes.
type QueryBatchRequest struct {
	Queries []dataplane.Query
	TC      TraceContext
}

// InjectRequest injects a symbolic packet at a source node (owned by the
// receiving worker). The packet is a serialized BDD. Tag, when non-empty,
// is the dataplane.QueryTag prefix of a multi-query pass: ownership is
// validated against Source, and the packet circulates as Tag+Source.
// (gob tolerates the added field in mixed fleets; old peers never see it
// because batch passes are negotiated via BeginQueryBatch first.)
type InjectRequest struct {
	Source string
	Packet []byte
	Tag    string
	TC     TraceContext
}

// PacketDelivery is one symbolic packet crossing a worker boundary: it
// arrives at Node on port InPort (③→④→⑤ in the paper's Figure 3). Round
// is the wavefront round the packet must be processed in: a delivery can
// physically arrive before the receiver has drained its current round
// (workers run each round concurrently), and processing it early would
// let the packet cross two adjacencies in one TTL tick. Receivers park
// deliveries stamped for a future round. Zero means round 0 (injection),
// and senders that predate the field degrade to immediate processing.
type PacketDelivery struct {
	Source string
	Node   string
	InPort string
	Packet []byte
	Round  int
}

// WirePacket is one symbolic packet inside a DeliverBatch message: the
// usual delivery coordinates plus the root's id in the batch's shared
// substrate (bdd wire codec) instead of an independently serialized BDD.
type WirePacket struct {
	Source string
	Node   string
	InPort string
	Root   uint32
}

// DeliverBatchRequest carries every packet a sender has for one
// destination worker in a round chunk: one shared-substrate BDD message
// (bdd.EncodeDelta against the sender's per-peer WireSession) plus the
// per-packet roots referencing it. From names the sending worker so the
// receiver can keep one wire session per peer.
type DeliverBatchRequest struct {
	From  int
	Wire  []byte
	Items []WirePacket
	Round int // wavefront round the batch is for (see PacketDelivery.Round)
	TC    TraceContext
}

// DeliverBatchReply closes the epoch/reset handshake: Reset asks the
// sender to bdd.WireSession.Reset and re-send from scratch because the
// receiver no longer holds the session state the message splices onto
// (it was restarted, recovered, or began a new query phase). Nothing was
// consumed when Reset is true.
type DeliverBatchReply struct {
	Reset bool
}

// HasWorkReply reports whether a worker still has queued packets.
type HasWorkReply struct {
	Busy bool
}

// OutcomeBatch is a worker's finalized packets for the current query.
// When Wire is non-empty it is a shared-substrate set encoding
// (bdd.SerializeSet) of every outcome's packet, root i belonging to
// Outcomes[i], whose Packet field is then empty. When Wire is empty each
// outcome carries its own independently serialized packet (older workers
// and the -no-wire-dedup escape hatch).
type OutcomeBatch struct {
	Wire     []byte
	Outcomes []dataplane.RawOutcome
}

// OutcomesReply returns a worker's finalized packets for the current query.
type OutcomesReply struct {
	Wire     []byte
	Outcomes []dataplane.RawOutcome
}

// RIBsReply returns the merged per-node RIB contents.
type RIBsReply struct {
	Routes map[string][]*route.Route
}

// WorkerStats reports a worker's resource accounting.
type WorkerStats struct {
	WorkerID   int
	Nodes      int
	PeakBytes  int64
	NowBytes   int64
	BDDNodes   int
	RoutePulls int64 // cross-worker pulls served (communication metric)
	PacketsIn  int64 // cross-worker packet deliveries received
	// BDD garbage-collection accounting: collection count, cumulative
	// stop-the-world pause, op-cache entries relocated across collections,
	// and pause percentiles over the recent-collection window.
	GCRuns           int64
	GCPauseMicros    int64
	GCCacheRelocated int64
	GCPauseP50Micros int64
	GCPauseP99Micros int64
}

// PullSpansRequest asks a worker to drain its span export queue (bounded
// ring fed by the worker's tracer) so the controller can merge remote
// spans into the single run trace.
type PullSpansRequest struct {
	// Max bounds the spans returned per call (<= 0 lets the worker pick).
	Max int
	// WithFlight additionally snapshots the worker's flight-recorder page
	// — the controller sets it on the best-effort drain during eviction.
	WithFlight bool
	TC         TraceContext
}

// PullSpansReply carries drained spans plus the worker's clock reading,
// which the controller feeds to its per-worker SkewEstimator.
type PullSpansReply struct {
	Spans []obs.SpanData
	// Dropped counts spans lost to export-ring overflow since the last
	// drain; More reports the queue was not emptied by this call.
	Dropped uint64
	More    bool
	// NowUnixMicro is the worker's clock while serving this call.
	NowUnixMicro int64
	// Flight is the worker's recent flight-recorder page when WithFlight.
	Flight []obs.FlightEvent
}

// PullStatsRequest asks a worker for a point-in-time vitals snapshot —
// the fleet health sampler's per-worker probe, riding the heartbeat
// cadence.
type PullStatsRequest struct {
	TC TraceContext
}

// WorkerVitals is one worker's live health snapshot, cheap enough to
// serve at heartbeat cadence without touching phase state.
type WorkerVitals struct {
	WorkerID int
	// Shard and Round are the worker's current shard index and wavefront
	// round — the forward-progress indicators the straggler analytics and
	// dashboard heatmap key on.
	Shard int
	Round int
	// QueueLen counts parked symbolic packets (plus undelivered inbox
	// entries) awaiting the next dataplane round.
	QueueLen int
	// BDDNodes is the engine's live node count after the last compile/GC.
	BDDNodes int64
	// GCPauseP99Micros is the p99 stop-the-world BDD GC pause over the
	// recent-collection window.
	GCPauseP99Micros int64
	// Process vitals: resident set (linux best-effort), Go heap in use,
	// and goroutine count.
	RSSBytes   int64
	HeapBytes  int64
	Goroutines int
	// NowUnixMicro is the worker's clock while serving this call (fed to
	// the controller's per-worker SkewEstimator).
	NowUnixMicro int64
}

// PullStatsReply carries the vitals snapshot.
type PullStatsReply struct {
	Vitals WorkerVitals
}

// PullProfileRequest asks a worker to capture one pprof profile for the
// centralized continuous-profiling harvest.
type PullProfileRequest struct {
	// Kind selects the profile: "cpu" or "heap".
	Kind string
	// Seconds bounds a cpu capture (default 2, clamped to [1, 30]);
	// ignored for heap.
	Seconds int
	TC      TraceContext
}

// PullProfileReply carries the captured profile.
type PullProfileReply struct {
	WorkerID int
	Kind     string
	// Profile is the gzip-framed pprof proto as written by runtime/pprof.
	Profile []byte
}

// WorkerAPI is the Go-level surface of a worker. The in-process
// core.Worker implements it directly; RemoteWorker implements it over RPC.
type WorkerAPI interface {
	// Ping is the liveness probe used by the controller's failure
	// detector. It must be cheap and must not block on worker state.
	Ping() error

	Setup(req SetupRequest) error
	BeginShard(req BeginShardRequest) error
	GatherBGP() error
	ApplyBGP() (ApplyReply, error)
	GatherOSPF() error
	ApplyOSPF() (ApplyReply, error)
	EndShard() (EndShardReply, error)

	PullBGP(exporter, puller string, since uint64, seen bool) ([]bgp.Advertisement, uint64, bool, error)
	PullLSAs(exporter, puller string, since uint64, seen bool) ([]*ospf.LSA, uint64, bool, error)
	// PullBGPBatch and PullLSABatch serve many pulls in one round trip;
	// replies align with reqs by index. Workers fall back to per-pull RPCs
	// against peers that predate these methods.
	PullBGPBatch(reqs []PullBGPRequest) ([]PullBGPReply, error)
	PullLSABatch(reqs []PullLSAsRequest) ([]PullLSAsReply, error)
	// PullBGPBatchWire and PullLSABatchWire are the batch pulls with the
	// reply set varint-encoded on the wire (PullWireReply) instead of gob.
	// In-process they are identical to the gob batches; workers fall back
	// per peer when the remote end predates them.
	PullBGPBatchWire(reqs []PullBGPRequest) ([]PullBGPReply, error)
	PullLSABatchWire(reqs []PullLSAsRequest) ([]PullLSAsReply, error)

	// ApplyDelta swaps changed local device models into resident state
	// after a converged run, without a full re-Setup. Not idempotent in
	// principle (it mutates resident RIBs), but safe to retry in practice
	// because the swap is deterministic from the request.
	ApplyDelta(req DeltaRequest) (DeltaReply, error)

	ComputeDP() (ComputeDPReply, error)
	BeginQuery(req QueryRequest) error
	// BeginQueryBatch arms one multi-query symbolic pass (tagged sources,
	// per-query dest sets). Workers that predate it return the net/rpc
	// unknown-method error; the controller falls back to per-query passes.
	BeginQueryBatch(req QueryBatchRequest) error
	Inject(req InjectRequest) error
	DPRound() error
	HasWork() (bool, error)
	DeliverPackets(items []PacketDelivery) error
	// DeliverBatch delivers many packets against one shared BDD substrate
	// with per-peer incremental node dedup. Workers fall back to
	// per-packet DeliverPackets against peers that predate this method.
	DeliverBatch(req DeliverBatchRequest) (DeliverBatchReply, error)
	FinishQuery() (OutcomeBatch, error)

	CollectRIBs() (map[string][]*route.Route, error)
	Stats() (WorkerStats, error)
	// PullSpans drains the worker's span export queue. Probe-class like
	// Ping/Stats: it must not block on phase state, and workers that
	// predate it (or run without a tracer) return an empty reply.
	PullSpans(req PullSpansRequest) (PullSpansReply, error)
	// PullStats returns the worker's live vitals for the fleet health
	// plane. Probe-class like Ping/Stats/PullSpans: it must not block on
	// phase state; workers that predate it answer with the net/rpc
	// unknown-method error and the controller stops asking.
	PullStats(req PullStatsRequest) (PullStatsReply, error)
	// PullProfile captures and returns one pprof profile. Probe-class (no
	// phase lock), though a cpu capture blocks its caller for the capture
	// window — callers bypass short per-RPC deadlines for it.
	PullProfile(req PullProfileRequest) (PullProfileReply, error)
}

// Empty is the placeholder for void RPC arguments/replies.
type Empty struct{}

// RPCHook observes one RPC: it is called with the method name when the
// call begins and returns the completion func that commits the outcome.
// obs.RPCInstrument builds one.
type RPCHook func(method string) (done func(error))

// TraceHook is an RPCHook that also yields the TraceContext of the span it
// opened for the call, so the transport can stamp it onto the outgoing
// request and the server side can parent under this exact attempt (each
// retry through fault.Wrap re-enters the hook, so every attempt gets its
// own span while sharing the stable stage-span parent).
// obs.RPCInstrumentTraced builds one.
type TraceHook func(method string) (TraceContext, func(error))

// TraceParentAcceptor is implemented by workers that can parent the spans
// they open while serving a call under the caller's propagated context.
// Service offers every valid incoming TC to the API through it; the worker
// decides per method whether to adopt it (controller phase calls) or
// ignore it (concurrent peer traffic must not reparent phase spans).
type TraceParentAcceptor interface {
	AcceptTraceParent(method string, tc TraceContext)
}

// Service adapts a WorkerAPI to net/rpc method conventions. It is
// registered under the name "Sidecar". When attached to a Server, every
// RPC passes through the server's drain gate so graceful shutdown can wait
// for in-flight calls, and through the server's RPC hook so the worker's
// telemetry sees every served call.
type Service struct {
	api  WorkerAPI
	gate *Server // optional
}

// NewService wraps a worker (no drain gate, no hook).
func NewService(api WorkerAPI) *Service { return &Service{api: api} }

// do runs one RPC body under the drain gate and RPC hook (if any), after
// offering the caller's propagated TraceContext to the worker.
func (s *Service) do(method string, tc TraceContext, fn func() error) error {
	if tc.Valid() {
		if acc, ok := s.api.(TraceParentAcceptor); ok {
			acc.AcceptTraceParent(method, tc)
		}
	}
	if s.gate == nil {
		return fn()
	}
	if err := s.gate.enter(); err != nil {
		return err
	}
	defer s.gate.exit()
	if hook := s.gate.rpcHook(); hook != nil {
		done := hook(method)
		err := fn()
		done(err)
		return err
	}
	return fn()
}

// Ping RPC (liveness probe). Deliberately carries no TraceContext:
// heartbeats run concurrently with phase calls and must not touch the
// worker's span parenting.
func (s *Service) Ping(_ Empty, _ *Empty) error {
	return s.do("Ping", TraceContext{}, func() error { return s.api.Ping() })
}

// Setup RPC.
func (s *Service) Setup(req SetupRequest, _ *Empty) error {
	return s.do("Setup", req.TC, func() error { return s.api.Setup(req) })
}

// BeginShard RPC.
func (s *Service) BeginShard(req BeginShardRequest, _ *Empty) error {
	return s.do("BeginShard", req.TC, func() error { return s.api.BeginShard(req) })
}

// GatherBGP RPC.
func (s *Service) GatherBGP(args CallMeta, _ *Empty) error {
	return s.do("GatherBGP", args.TC, s.api.GatherBGP)
}

// ApplyBGP RPC.
func (s *Service) ApplyBGP(args CallMeta, reply *ApplyReply) error {
	return s.do("ApplyBGP", args.TC, func() error {
		r, err := s.api.ApplyBGP()
		*reply = r
		return err
	})
}

// GatherOSPF RPC.
func (s *Service) GatherOSPF(args CallMeta, _ *Empty) error {
	return s.do("GatherOSPF", args.TC, s.api.GatherOSPF)
}

// ApplyOSPF RPC.
func (s *Service) ApplyOSPF(args CallMeta, reply *ApplyReply) error {
	return s.do("ApplyOSPF", args.TC, func() error {
		r, err := s.api.ApplyOSPF()
		*reply = r
		return err
	})
}

// EndShard RPC.
func (s *Service) EndShard(args CallMeta, reply *EndShardReply) error {
	return s.do("EndShard", args.TC, func() error {
		r, err := s.api.EndShard()
		*reply = r
		return err
	})
}

// PullBGP RPC.
func (s *Service) PullBGP(req PullBGPRequest, reply *PullBGPReply) error {
	return s.do("PullBGP", req.TC, func() error {
		advs, ver, fresh, err := s.api.PullBGP(req.Exporter, req.Puller, req.Since, req.Seen)
		reply.Advs, reply.Version, reply.Fresh = advs, ver, fresh
		return err
	})
}

// PullLSAs RPC.
func (s *Service) PullLSAs(req PullLSAsRequest, reply *PullLSAsReply) error {
	return s.do("PullLSAs", req.TC, func() error {
		lsas, ver, fresh, err := s.api.PullLSAs(req.Exporter, req.Puller, req.Since, req.Seen)
		reply.LSAs, reply.Version, reply.Fresh = lsas, ver, fresh
		return err
	})
}

// PullBGPBatch RPC.
func (s *Service) PullBGPBatch(reqs []PullBGPRequest, reply *PullBGPBatchReply) error {
	var tc TraceContext
	if len(reqs) > 0 {
		tc = reqs[0].TC
	}
	return s.do("PullBGPBatch", tc, func() error {
		replies, err := s.api.PullBGPBatch(reqs)
		reply.Replies = replies
		return err
	})
}

// PullLSABatch RPC.
func (s *Service) PullLSABatch(reqs []PullLSAsRequest, reply *PullLSABatchReply) error {
	var tc TraceContext
	if len(reqs) > 0 {
		tc = reqs[0].TC
	}
	return s.do("PullLSABatch", tc, func() error {
		replies, err := s.api.PullLSABatch(reqs)
		reply.Replies = replies
		return err
	})
}

// PullBGPBatchWire RPC: the reply set crosses the wire as one varint
// payload instead of gob structs.
func (s *Service) PullBGPBatchWire(reqs []PullBGPRequest, reply *PullWireReply) error {
	var tc TraceContext
	if len(reqs) > 0 {
		tc = reqs[0].TC
	}
	return s.do("PullBGPBatchWire", tc, func() error {
		replies, err := s.api.PullBGPBatchWire(reqs)
		if err != nil {
			return err
		}
		reply.Payload = EncodeBGPReplies(replies)
		return nil
	})
}

// PullLSABatchWire RPC.
func (s *Service) PullLSABatchWire(reqs []PullLSAsRequest, reply *PullWireReply) error {
	var tc TraceContext
	if len(reqs) > 0 {
		tc = reqs[0].TC
	}
	return s.do("PullLSABatchWire", tc, func() error {
		replies, err := s.api.PullLSABatchWire(reqs)
		if err != nil {
			return err
		}
		reply.Payload = EncodeLSAReplies(replies)
		return nil
	})
}

// ApplyDelta RPC.
func (s *Service) ApplyDelta(req DeltaRequest, reply *DeltaReply) error {
	return s.do("ApplyDelta", req.TC, func() error {
		r, err := s.api.ApplyDelta(req)
		*reply = r
		return err
	})
}

// ComputeDP RPC.
func (s *Service) ComputeDP(args CallMeta, reply *ComputeDPReply) error {
	return s.do("ComputeDP", args.TC, func() error {
		r, err := s.api.ComputeDP()
		*reply = r
		return err
	})
}

// BeginQuery RPC.
func (s *Service) BeginQuery(req QueryRequest, _ *Empty) error {
	return s.do("BeginQuery", req.TC, func() error { return s.api.BeginQuery(req) })
}

// BeginQueryBatch RPC.
func (s *Service) BeginQueryBatch(req QueryBatchRequest, _ *Empty) error {
	return s.do("BeginQueryBatch", req.TC, func() error { return s.api.BeginQueryBatch(req) })
}

// Inject RPC.
func (s *Service) Inject(req InjectRequest, _ *Empty) error {
	return s.do("Inject", req.TC, func() error { return s.api.Inject(req) })
}

// DPRound RPC.
func (s *Service) DPRound(args CallMeta, _ *Empty) error {
	return s.do("DPRound", args.TC, s.api.DPRound)
}

// HasWork RPC.
func (s *Service) HasWork(args CallMeta, reply *HasWorkReply) error {
	return s.do("HasWork", args.TC, func() error {
		busy, err := s.api.HasWork()
		reply.Busy = busy
		return err
	})
}

// DeliverPackets RPC.
func (s *Service) DeliverPackets(items []PacketDelivery, _ *Empty) error {
	return s.do("DeliverPackets", TraceContext{}, func() error { return s.api.DeliverPackets(items) })
}

// DeliverBatch RPC.
func (s *Service) DeliverBatch(req DeliverBatchRequest, reply *DeliverBatchReply) error {
	return s.do("DeliverBatch", req.TC, func() error {
		r, err := s.api.DeliverBatch(req)
		*reply = r
		return err
	})
}

// FinishQuery RPC.
func (s *Service) FinishQuery(args CallMeta, reply *OutcomesReply) error {
	return s.do("FinishQuery", args.TC, func() error {
		batch, err := s.api.FinishQuery()
		reply.Wire = batch.Wire
		reply.Outcomes = batch.Outcomes
		return err
	})
}

// CollectRIBs RPC.
func (s *Service) CollectRIBs(args CallMeta, reply *RIBsReply) error {
	return s.do("CollectRIBs", args.TC, func() error {
		routes, err := s.api.CollectRIBs()
		reply.Routes = routes
		return err
	})
}

// Stats RPC.
func (s *Service) Stats(args CallMeta, reply *WorkerStats) error {
	return s.do("Stats", args.TC, func() error {
		st, err := s.api.Stats()
		*reply = st
		return err
	})
}

// PullSpans RPC.
func (s *Service) PullSpans(req PullSpansRequest, reply *PullSpansReply) error {
	return s.do("PullSpans", req.TC, func() error {
		r, err := s.api.PullSpans(req)
		*reply = r
		return err
	})
}

// PullStats RPC.
func (s *Service) PullStats(req PullStatsRequest, reply *PullStatsReply) error {
	return s.do("PullStats", req.TC, func() error {
		r, err := s.api.PullStats(req)
		*reply = r
		return err
	})
}

// PullProfile RPC.
func (s *Service) PullProfile(req PullProfileRequest, reply *PullProfileReply) error {
	return s.do("PullProfile", req.TC, func() error {
		r, err := s.api.PullProfile(req)
		*reply = r
		return err
	})
}

// Server accepts sidecar connections for one worker and supports graceful
// shutdown: Shutdown(grace) stops accepting, waits up to grace for
// in-flight RPCs to drain, then closes every connection. Shutdown(0) is an
// abrupt close — tests use it to simulate a crash.
type Server struct {
	api WorkerAPI

	hook    atomic.Value // RPCHook, set via SetRPCHook
	in, out atomic.Int64 // transport bytes across all connections

	mu       sync.Mutex
	lis      net.Listener
	conns    map[net.Conn]struct{}
	inflight int
	draining bool
	idle     chan struct{}
}

// NewServer builds a server for one worker.
func NewServer(api WorkerAPI) *Server {
	return &Server{api: api, conns: make(map[net.Conn]struct{})}
}

// SetRPCHook installs the observer every served RPC passes through. Safe to
// call while serving; nil clears it.
func (s *Server) SetRPCHook(h RPCHook) { s.hook.Store(h) }

func (s *Server) rpcHook() RPCHook {
	h, _ := s.hook.Load().(RPCHook)
	return h
}

// BytesRead reports transport bytes received across all connections.
func (s *Server) BytesRead() int64 { return s.in.Load() }

// BytesWritten reports transport bytes sent across all connections.
func (s *Server) BytesWritten() int64 { return s.out.Load() }

// countingConn tallies transport bytes into shared counters. It backs the
// s2_rpc_bytes_total metric — net/rpc+gob gives no per-message sizes, so
// byte accounting happens at the connection layer.
type countingConn struct {
	net.Conn
	in, out *atomic.Int64
}

func (c countingConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	c.in.Add(int64(n))
	return n, err
}

func (c countingConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	c.out.Add(int64(n))
	return n, err
}

// Serve accepts connections on lis until the listener closes. Returns nil
// when the close came from Shutdown, the accept error otherwise.
func (s *Server) Serve(lis net.Listener) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		lis.Close()
		return nil
	}
	s.lis = lis
	s.mu.Unlock()

	srv := rpc.NewServer()
	if err := srv.RegisterName("Sidecar", &Service{api: s.api, gate: s}); err != nil {
		return err
	}
	for {
		conn, err := lis.Accept()
		if err != nil {
			s.mu.Lock()
			draining := s.draining
			s.mu.Unlock()
			if draining {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.draining {
			s.mu.Unlock()
			conn.Close()
			continue
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		go func() {
			srv.ServeConn(countingConn{Conn: conn, in: &s.in, out: &s.out})
			s.mu.Lock()
			delete(s.conns, conn)
			s.mu.Unlock()
		}()
	}
}

// enter admits one RPC, or rejects it if the server is draining.
func (s *Server) enter() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return ErrDraining
	}
	s.inflight++
	return nil
}

func (s *Server) exit() {
	s.mu.Lock()
	s.inflight--
	if s.inflight == 0 && s.idle != nil {
		close(s.idle)
		s.idle = nil
	}
	s.mu.Unlock()
}

// Shutdown stops accepting connections and rejects new RPCs. With grace > 0
// it waits up to grace for in-flight RPCs to complete (plus a short settle
// so their replies flush) before closing connections; with grace 0 it
// severs everything immediately, like a crash. Idempotent.
func (s *Server) Shutdown(grace time.Duration) {
	s.mu.Lock()
	already := s.draining
	s.draining = true
	lis := s.lis
	var idle chan struct{}
	if !already && grace > 0 && s.inflight > 0 {
		idle = make(chan struct{})
		s.idle = idle
	}
	s.mu.Unlock()

	if lis != nil {
		lis.Close()
	}
	if idle != nil {
		select {
		case <-idle:
			// In-flight handlers returned; their replies are written by the
			// rpc server just after, so give them a moment to flush.
			time.Sleep(20 * time.Millisecond)
		case <-time.After(grace):
		}
	}

	s.mu.Lock()
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.conns = make(map[net.Conn]struct{})
	s.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
}

// Serve registers the service on a fresh RPC server and accepts
// connections until the listener closes. It is the body of a sidecar
// process; equivalent to NewServer(api).Serve(lis) when graceful shutdown
// is not needed.
func Serve(api WorkerAPI, lis net.Listener) error {
	return NewServer(api).Serve(lis)
}

// CallWrapper decorates every RPC a RemoteWorker issues: it receives the
// method name, whether the call is idempotent (safe to retry), and the call
// itself. fault.Caller.Wrap produces one that adds deadlines and retries;
// this indirection keeps sidecar free of a dependency on the fault package.
type CallWrapper func(method string, idempotent bool, call func() error) error

// RemoteWorker is the client side: a WorkerAPI (and sim.PullPeer) that
// relays every call over RPC, optionally through a CallWrapper.
type RemoteWorker struct {
	addr    string
	c       *rpc.Client
	wrap    CallWrapper
	in, out atomic.Int64

	// nextTC is a one-shot trace parent consumed by the next non-Ping
	// call; ObserveTraced stamps it per attempt. tcSource is a read-only
	// fallback sampler (a worker's current phase span) used when no
	// one-shot parent is pending — safe under concurrent callers, which is
	// why peer-facing paths use it instead of the take-once slot.
	nextTC   atomic.Pointer[TraceContext]
	tcSource atomic.Value // func() TraceContext
}

// SetNextTraceParent arms the one-shot trace parent for the next call
// issued on this client (stamped onto the request's TC field).
func (r *RemoteWorker) SetNextTraceParent(tc TraceContext) {
	r.nextTC.Store(&tc)
}

// SetTraceSource installs a sampler consulted when no one-shot parent is
// armed — workers point their dialed peers at the current phase span so
// peer pulls and deliveries carry a live context.
func (r *RemoteWorker) SetTraceSource(fn func() TraceContext) {
	r.tcSource.Store(fn)
}

// takeTC resolves the TraceContext to stamp on an outgoing request.
func (r *RemoteWorker) takeTC() TraceContext {
	if p := r.nextTC.Swap(nil); p != nil {
		return *p
	}
	if fn, _ := r.tcSource.Load().(func() TraceContext); fn != nil {
		return fn()
	}
	return TraceContext{}
}

// BytesRead reports transport bytes received on this client connection.
func (r *RemoteWorker) BytesRead() int64 { return r.in.Load() }

// BytesWritten reports transport bytes sent on this client connection.
func (r *RemoteWorker) BytesWritten() int64 { return r.out.Load() }

// Dial connects to a worker's sidecar with no deadline or retries.
func Dial(addr string) (*RemoteWorker, error) {
	return DialWrapped(addr, 0, nil)
}

// DialWrapped connects with a bound on the TCP dial (0 = none) and routes
// every subsequent call through wrap (nil = direct).
func DialWrapped(addr string, dialTimeout time.Duration, wrap CallWrapper) (*RemoteWorker, error) {
	var conn net.Conn
	var err error
	if dialTimeout > 0 {
		conn, err = net.DialTimeout("tcp", addr, dialTimeout)
	} else {
		conn, err = net.Dial("tcp", addr)
	}
	if err != nil {
		return nil, fmt.Errorf("sidecar: dialing %s: %w", addr, err)
	}
	r := &RemoteWorker{addr: addr, wrap: wrap}
	r.c = rpc.NewClient(countingConn{Conn: conn, in: &r.in, out: &r.out})
	return r, nil
}

// Addr returns the remote address.
func (r *RemoteWorker) Addr() string { return r.addr }

// Close tears down the connection. In-flight calls return rpc.ErrShutdown,
// which is how the controller's failure detector unblocks calls hung on a
// dead worker.
func (r *RemoteWorker) Close() error { return r.c.Close() }

// rcall issues one RPC through the wrapper. A fresh reply is allocated per
// attempt: gob decodes into whatever the reply already holds, so reusing a
// partially-filled reply across retries could merge stale state.
func rcall[R any](r *RemoteWorker, method string, idempotent bool, args any) (R, error) {
	var reply R
	call := func() error {
		var fresh R
		if err := r.c.Call("Sidecar."+method, args, &fresh); err != nil {
			return err
		}
		reply = fresh
		return nil
	}
	if r.wrap == nil {
		return reply, call()
	}
	return reply, r.wrap(method, idempotent, call)
}

// Idempotency of each RPC, which gates retries. Phase mutations (Gather*/
// Apply*/EndShard/Inject/DPRound/DeliverPackets/FinishQuery) are NOT safe
// to retry — a timed-out attempt may still have executed remotely, and
// running one twice breaks the round barrier; recovery for those is
// re-execution from a clean re-Setup. Setup/BeginShard/BeginQuery fully
// reset the state they establish, and the rest are reads — including the
// Pull* family (plain and batch): serving a pull never mutates exporter
// state, so a duplicate delivery of a timed-out pull is harmless.

// Ping implements WorkerAPI.
func (r *RemoteWorker) Ping() error {
	_, err := rcall[Empty](r, "Ping", true, Empty{})
	return err
}

// Setup implements WorkerAPI.
func (r *RemoteWorker) Setup(req SetupRequest) error {
	req.TC = r.takeTC()
	_, err := rcall[Empty](r, "Setup", true, req)
	return err
}

// BeginShard implements WorkerAPI.
func (r *RemoteWorker) BeginShard(req BeginShardRequest) error {
	req.TC = r.takeTC()
	_, err := rcall[Empty](r, "BeginShard", true, req)
	return err
}

// GatherBGP implements WorkerAPI.
func (r *RemoteWorker) GatherBGP() error {
	_, err := rcall[Empty](r, "GatherBGP", false, CallMeta{TC: r.takeTC()})
	return err
}

// ApplyBGP implements WorkerAPI.
func (r *RemoteWorker) ApplyBGP() (ApplyReply, error) {
	return rcall[ApplyReply](r, "ApplyBGP", false, CallMeta{TC: r.takeTC()})
}

// GatherOSPF implements WorkerAPI.
func (r *RemoteWorker) GatherOSPF() error {
	_, err := rcall[Empty](r, "GatherOSPF", false, CallMeta{TC: r.takeTC()})
	return err
}

// ApplyOSPF implements WorkerAPI.
func (r *RemoteWorker) ApplyOSPF() (ApplyReply, error) {
	return rcall[ApplyReply](r, "ApplyOSPF", false, CallMeta{TC: r.takeTC()})
}

// EndShard implements WorkerAPI.
func (r *RemoteWorker) EndShard() (EndShardReply, error) {
	return rcall[EndShardReply](r, "EndShard", false, CallMeta{TC: r.takeTC()})
}

// PullBGP implements WorkerAPI and sim.PullPeer.
func (r *RemoteWorker) PullBGP(exporter, puller string, since uint64, seen bool) ([]bgp.Advertisement, uint64, bool, error) {
	reply, err := rcall[PullBGPReply](r, "PullBGP", true,
		PullBGPRequest{Exporter: exporter, Puller: puller, Since: since, Seen: seen, TC: r.takeTC()})
	return reply.Advs, reply.Version, reply.Fresh, err
}

// PullLSAs implements WorkerAPI and sim.PullPeer.
func (r *RemoteWorker) PullLSAs(exporter, puller string, since uint64, seen bool) ([]*ospf.LSA, uint64, bool, error) {
	reply, err := rcall[PullLSAsReply](r, "PullLSAs", true,
		PullLSAsRequest{Exporter: exporter, Puller: puller, Since: since, Seen: seen, TC: r.takeTC()})
	return reply.LSAs, reply.Version, reply.Fresh, err
}

// PullBGPBatch implements WorkerAPI. The trace context rides on the first
// request of the batch (the wire shape — a bare slice — predates TC).
func (r *RemoteWorker) PullBGPBatch(reqs []PullBGPRequest) ([]PullBGPReply, error) {
	if len(reqs) > 0 {
		reqs[0].TC = r.takeTC()
	}
	reply, err := rcall[PullBGPBatchReply](r, "PullBGPBatch", true, reqs)
	return reply.Replies, err
}

// PullLSABatch implements WorkerAPI.
func (r *RemoteWorker) PullLSABatch(reqs []PullLSAsRequest) ([]PullLSAsReply, error) {
	if len(reqs) > 0 {
		reqs[0].TC = r.takeTC()
	}
	reply, err := rcall[PullLSABatchReply](r, "PullLSABatch", true, reqs)
	return reply.Replies, err
}

// PullBGPBatchWire implements WorkerAPI: the reply set arrives as one
// varint payload and is decoded client-side.
func (r *RemoteWorker) PullBGPBatchWire(reqs []PullBGPRequest) ([]PullBGPReply, error) {
	if len(reqs) > 0 {
		reqs[0].TC = r.takeTC()
	}
	reply, err := rcall[PullWireReply](r, "PullBGPBatchWire", true, reqs)
	if err != nil {
		return nil, err
	}
	return DecodeBGPReplies(reply.Payload)
}

// PullLSABatchWire implements WorkerAPI.
func (r *RemoteWorker) PullLSABatchWire(reqs []PullLSAsRequest) ([]PullLSAsReply, error) {
	if len(reqs) > 0 {
		reqs[0].TC = r.takeTC()
	}
	reply, err := rcall[PullWireReply](r, "PullLSABatchWire", true, reqs)
	if err != nil {
		return nil, err
	}
	return DecodeLSAReplies(reply.Payload)
}

// ApplyDelta implements WorkerAPI. Retry-safe: the swap is deterministic
// from the request and purges are idempotent.
func (r *RemoteWorker) ApplyDelta(req DeltaRequest) (DeltaReply, error) {
	req.TC = r.takeTC()
	return rcall[DeltaReply](r, "ApplyDelta", true, req)
}

// ComputeDP implements WorkerAPI.
func (r *RemoteWorker) ComputeDP() (ComputeDPReply, error) {
	return rcall[ComputeDPReply](r, "ComputeDP", true, CallMeta{TC: r.takeTC()})
}

// BeginQuery implements WorkerAPI.
func (r *RemoteWorker) BeginQuery(req QueryRequest) error {
	req.TC = r.takeTC()
	_, err := rcall[Empty](r, "BeginQuery", true, req)
	return err
}

// BeginQueryBatch implements WorkerAPI.
func (r *RemoteWorker) BeginQueryBatch(req QueryBatchRequest) error {
	req.TC = r.takeTC()
	_, err := rcall[Empty](r, "BeginQueryBatch", true, req)
	return err
}

// Inject implements WorkerAPI.
func (r *RemoteWorker) Inject(req InjectRequest) error {
	req.TC = r.takeTC()
	_, err := rcall[Empty](r, "Inject", false, req)
	return err
}

// DPRound implements WorkerAPI.
func (r *RemoteWorker) DPRound() error {
	_, err := rcall[Empty](r, "DPRound", false, CallMeta{TC: r.takeTC()})
	return err
}

// HasWork implements WorkerAPI.
func (r *RemoteWorker) HasWork() (bool, error) {
	reply, err := rcall[HasWorkReply](r, "HasWork", true, CallMeta{TC: r.takeTC()})
	return reply.Busy, err
}

// DeliverPackets implements WorkerAPI.
func (r *RemoteWorker) DeliverPackets(items []PacketDelivery) error {
	_, err := rcall[Empty](r, "DeliverPackets", false, items)
	return err
}

// DeliverBatch implements WorkerAPI. Not idempotent: a retried delivery
// would double-apply the substrate splice and the packet merges.
func (r *RemoteWorker) DeliverBatch(req DeliverBatchRequest) (DeliverBatchReply, error) {
	req.TC = r.takeTC()
	return rcall[DeliverBatchReply](r, "DeliverBatch", false, req)
}

// FinishQuery implements WorkerAPI.
func (r *RemoteWorker) FinishQuery() (OutcomeBatch, error) {
	reply, err := rcall[OutcomesReply](r, "FinishQuery", false, CallMeta{TC: r.takeTC()})
	return OutcomeBatch{Wire: reply.Wire, Outcomes: reply.Outcomes}, err
}

// CollectRIBs implements WorkerAPI.
func (r *RemoteWorker) CollectRIBs() (map[string][]*route.Route, error) {
	reply, err := rcall[RIBsReply](r, "CollectRIBs", true, CallMeta{TC: r.takeTC()})
	return reply.Routes, err
}

// Stats implements WorkerAPI.
func (r *RemoteWorker) Stats() (WorkerStats, error) {
	return rcall[WorkerStats](r, "Stats", true, CallMeta{TC: r.takeTC()})
}

// PullSpans implements WorkerAPI. Idempotent in the retry sense — a lost
// reply loses at most one drain batch of telemetry, never application
// state — and, like Ping, safe against a wedged worker (no phase lock).
func (r *RemoteWorker) PullSpans(req PullSpansRequest) (PullSpansReply, error) {
	return rcall[PullSpansReply](r, "PullSpans", true, req)
}

// PullStats implements WorkerAPI. Idempotent: a pure point-in-time read.
func (r *RemoteWorker) PullStats(req PullStatsRequest) (PullStatsReply, error) {
	return rcall[PullStatsReply](r, "PullStats", true, req)
}

// PullProfile implements WorkerAPI. Idempotent in the retry sense — a
// retried capture just captures again.
func (r *RemoteWorker) PullProfile(req PullProfileRequest) (PullProfileReply, error) {
	return rcall[PullProfileReply](r, "PullProfile", true, req)
}

// PhaseClass reports whether a method is a controller-phase call: issued
// by the controller, serialized per worker, and the trigger for the
// worker-side phase span. Only these propagate a one-shot trace parent —
// probes (Ping/HasWork/Stats/PullSpans) run concurrently with phases and
// must not disturb span parenting, and peer-facing traffic parents via the
// read-only trace source instead.
func PhaseClass(method string) bool {
	switch method {
	case "Setup", "BeginShard", "GatherBGP", "ApplyBGP", "GatherOSPF",
		"ApplyOSPF", "EndShard", "ComputeDP", "BeginQuery", "BeginQueryBatch",
		"Inject", "DPRound", "FinishQuery", "ApplyDelta":
		return true
	}
	return false
}

// Observe wraps api so every call flows through hook (mirrors fault.Wrap).
// The controller uses it to attach RPC telemetry to in-process workers and
// remote clients alike; a nil hook returns api unchanged.
func Observe(api WorkerAPI, hook RPCHook) WorkerAPI {
	if hook == nil {
		return api
	}
	return &observed{api: api, hook: hook}
}

// ObserveTraced is Observe with cross-process propagation: when api (the
// layer below, normally the RemoteWorker transport) can carry a trace
// parent, every phase-class call arms it with the context of the rpc span
// the hook just opened, so the server-side span parents under this exact
// call. fault.Wrap sits outside this wrapper, so each retry re-enters the
// hook and re-arms with its own fresh attempt span.
func ObserveTraced(api WorkerAPI, hook TraceHook) WorkerAPI {
	if hook == nil {
		return api
	}
	carrier, _ := api.(traceCarrier)
	return &observed{api: api, thook: hook, carrier: carrier}
}

// traceCarrier is the transport-side slot ObserveTraced arms (RemoteWorker
// implements it for the wire; core.Worker implements it directly so the
// in-process transport yields the same parenting).
type traceCarrier interface {
	SetNextTraceParent(tc TraceContext)
}

type observed struct {
	api     WorkerAPI
	hook    RPCHook
	thook   TraceHook
	carrier traceCarrier
}

// obs runs one call through the hook.
func (o *observed) obs(method string, call func() error) error {
	if o.thook != nil {
		tc, done := o.thook(method)
		if tc.Valid() && o.carrier != nil && PhaseClass(method) {
			o.carrier.SetNextTraceParent(tc)
		}
		err := call()
		done(err)
		return err
	}
	done := o.hook(method)
	err := call()
	done(err)
	return err
}

func (o *observed) Ping() error {
	return o.obs("Ping", o.api.Ping)
}

func (o *observed) Setup(req SetupRequest) error {
	return o.obs("Setup", func() error { return o.api.Setup(req) })
}

func (o *observed) BeginShard(req BeginShardRequest) error {
	return o.obs("BeginShard", func() error { return o.api.BeginShard(req) })
}

func (o *observed) GatherBGP() error {
	return o.obs("GatherBGP", o.api.GatherBGP)
}

func (o *observed) ApplyBGP() (ApplyReply, error) {
	var reply ApplyReply
	err := o.obs("ApplyBGP", func() error {
		var err error
		reply, err = o.api.ApplyBGP()
		return err
	})
	return reply, err
}

func (o *observed) GatherOSPF() error {
	return o.obs("GatherOSPF", o.api.GatherOSPF)
}

func (o *observed) ApplyOSPF() (ApplyReply, error) {
	var reply ApplyReply
	err := o.obs("ApplyOSPF", func() error {
		var err error
		reply, err = o.api.ApplyOSPF()
		return err
	})
	return reply, err
}

func (o *observed) EndShard() (EndShardReply, error) {
	var reply EndShardReply
	err := o.obs("EndShard", func() error {
		var err error
		reply, err = o.api.EndShard()
		return err
	})
	return reply, err
}

func (o *observed) PullBGP(exporter, puller string, since uint64, seen bool) ([]bgp.Advertisement, uint64, bool, error) {
	var advs []bgp.Advertisement
	var ver uint64
	var fresh bool
	err := o.obs("PullBGP", func() error {
		var err error
		advs, ver, fresh, err = o.api.PullBGP(exporter, puller, since, seen)
		return err
	})
	return advs, ver, fresh, err
}

func (o *observed) PullLSAs(exporter, puller string, since uint64, seen bool) ([]*ospf.LSA, uint64, bool, error) {
	var lsas []*ospf.LSA
	var ver uint64
	var fresh bool
	err := o.obs("PullLSAs", func() error {
		var err error
		lsas, ver, fresh, err = o.api.PullLSAs(exporter, puller, since, seen)
		return err
	})
	return lsas, ver, fresh, err
}

func (o *observed) PullBGPBatch(reqs []PullBGPRequest) ([]PullBGPReply, error) {
	var replies []PullBGPReply
	err := o.obs("PullBGPBatch", func() error {
		var err error
		replies, err = o.api.PullBGPBatch(reqs)
		return err
	})
	return replies, err
}

func (o *observed) PullLSABatch(reqs []PullLSAsRequest) ([]PullLSAsReply, error) {
	var replies []PullLSAsReply
	err := o.obs("PullLSABatch", func() error {
		var err error
		replies, err = o.api.PullLSABatch(reqs)
		return err
	})
	return replies, err
}

func (o *observed) PullBGPBatchWire(reqs []PullBGPRequest) ([]PullBGPReply, error) {
	var replies []PullBGPReply
	err := o.obs("PullBGPBatchWire", func() error {
		var err error
		replies, err = o.api.PullBGPBatchWire(reqs)
		return err
	})
	return replies, err
}

func (o *observed) PullLSABatchWire(reqs []PullLSAsRequest) ([]PullLSAsReply, error) {
	var replies []PullLSAsReply
	err := o.obs("PullLSABatchWire", func() error {
		var err error
		replies, err = o.api.PullLSABatchWire(reqs)
		return err
	})
	return replies, err
}

func (o *observed) ApplyDelta(req DeltaRequest) (DeltaReply, error) {
	var reply DeltaReply
	err := o.obs("ApplyDelta", func() error {
		var err error
		reply, err = o.api.ApplyDelta(req)
		return err
	})
	return reply, err
}

func (o *observed) ComputeDP() (ComputeDPReply, error) {
	var reply ComputeDPReply
	err := o.obs("ComputeDP", func() error {
		var err error
		reply, err = o.api.ComputeDP()
		return err
	})
	return reply, err
}

func (o *observed) BeginQuery(req QueryRequest) error {
	return o.obs("BeginQuery", func() error { return o.api.BeginQuery(req) })
}

func (o *observed) BeginQueryBatch(req QueryBatchRequest) error {
	return o.obs("BeginQueryBatch", func() error { return o.api.BeginQueryBatch(req) })
}

func (o *observed) Inject(req InjectRequest) error {
	return o.obs("Inject", func() error { return o.api.Inject(req) })
}

func (o *observed) DPRound() error {
	return o.obs("DPRound", o.api.DPRound)
}

func (o *observed) HasWork() (bool, error) {
	var busy bool
	err := o.obs("HasWork", func() error {
		var err error
		busy, err = o.api.HasWork()
		return err
	})
	return busy, err
}

func (o *observed) DeliverPackets(items []PacketDelivery) error {
	return o.obs("DeliverPackets", func() error { return o.api.DeliverPackets(items) })
}

func (o *observed) DeliverBatch(req DeliverBatchRequest) (DeliverBatchReply, error) {
	var reply DeliverBatchReply
	err := o.obs("DeliverBatch", func() error {
		var err error
		reply, err = o.api.DeliverBatch(req)
		return err
	})
	return reply, err
}

func (o *observed) FinishQuery() (OutcomeBatch, error) {
	var out OutcomeBatch
	err := o.obs("FinishQuery", func() error {
		var err error
		out, err = o.api.FinishQuery()
		return err
	})
	return out, err
}

func (o *observed) CollectRIBs() (map[string][]*route.Route, error) {
	var routes map[string][]*route.Route
	err := o.obs("CollectRIBs", func() error {
		var err error
		routes, err = o.api.CollectRIBs()
		return err
	})
	return routes, err
}

func (o *observed) Stats() (WorkerStats, error) {
	var st WorkerStats
	err := o.obs("Stats", func() error {
		var err error
		st, err = o.api.Stats()
		return err
	})
	return st, err
}

// PullSpans deliberately bypasses the hook: instrumenting the telemetry
// drain itself would mint a new rpc span per harvest, which the harvest
// then ships — an infinite feedback loop of self-describing spans.
func (o *observed) PullSpans(req PullSpansRequest) (PullSpansReply, error) {
	return o.api.PullSpans(req)
}

// PullStats and PullProfile bypass the hook for the same reason as
// PullSpans: the fleet health plane observing itself would pollute the
// very telemetry it collects.
func (o *observed) PullStats(req PullStatsRequest) (PullStatsReply, error) {
	return o.api.PullStats(req)
}

func (o *observed) PullProfile(req PullProfileRequest) (PullProfileReply, error) {
	return o.api.PullProfile(req)
}
