// Package sidecar is the communication layer of S2 (§3.2, "Sidecars"):
// every worker exposes one RPC endpoint used by the controller (to
// orchestrate phases) and by peer workers (to pull routes for shadow nodes
// and to deliver symbolic packets). The controller and each worker hold a
// directory of clients, mirroring the paper's per-server sidecar processes
// that route requests by a node→worker map.
//
// The wire protocol is Go's net/rpc with gob encoding — the stdlib
// equivalent of the paper's gRPC + Java serialization choice (§5.1). The
// same WorkerAPI interface is implemented by the in-process worker (direct
// calls, one goroutine pool per worker) and by the RemoteWorker RPC client
// (workers in separate OS processes via cmd/s2worker), so the controller
// code is transport-agnostic.
package sidecar

import (
	"fmt"
	"net"
	"net/rpc"

	"s2/internal/bgp"
	"s2/internal/dataplane"
	"s2/internal/ospf"
	"s2/internal/route"
	"s2/internal/topology"
)

// SetupRequest initializes a worker with its segment of the network.
type SetupRequest struct {
	// WorkerID is this worker's index; Assignment maps every node in the
	// network to its worker (shadow-node routing table).
	WorkerID   int
	Assignment map[string]int
	// Configs holds the raw configuration text of each LOCAL device; the
	// worker parses them into switch models.
	Configs map[string]string
	// Adjacencies and Sessions cover local devices (they reference remote
	// neighbors by name).
	Adjacencies map[string][]topology.Adjacency
	Sessions    map[string][]topology.BGPSession
	// MetaBits sizes the BDD layout; MaxBDDNodes bounds the node table
	// (0 = unlimited).
	MetaBits    int
	MaxBDDNodes int
	// MemoryBudget is the modelled per-worker memory budget in bytes
	// (0 = unlimited).
	MemoryBudget int64
	// PeerAddrs lists the RPC address of every worker (by worker index)
	// for worker-to-worker calls; empty strings mean "local" (in-process
	// mode wires peers directly instead).
	PeerAddrs []string
	// SpillDir, when non-empty, enables writing per-shard results to
	// disk between shard rounds (§3.1, "write it to persistent storage").
	SpillDir string
	// KeepRIBs retains full per-node RIBs in memory for CollectRIBs
	// (equivalence testing); disable for large runs.
	KeepRIBs bool
}

// BeginShardRequest starts a prefix-shard round. An empty prefix list means
// "no filter" (single-shard operation).
type BeginShardRequest struct {
	Index    int
	Prefixes []route.Prefix
}

// ConditionReport names a prefix-list consulted by conditional
// advertisement on a device during a shard round — the runtime dependency
// signal of §7.
type ConditionReport struct {
	Device     string
	PrefixList string
}

// EndShardReply summarizes a completed shard round.
type EndShardReply struct {
	Routes     int   // routes computed in this shard across local nodes
	ModelBytes int64 // current modelled memory after the shard was spilled
	// Conditions lists the conditional-advertisement prefix-lists local
	// nodes consulted, for runtime dependency detection.
	Conditions []ConditionReport
}

// ApplyReply reports whether any local node changed state this round.
type ApplyReply struct {
	Changed bool
}

// PullBGPRequest relays a shadow node's route pull to the real node.
type PullBGPRequest struct {
	Exporter string
	Puller   string
	Since    uint64
	Seen     bool
}

// PullBGPReply carries the exported advertisements.
type PullBGPReply struct {
	Advs    []bgp.Advertisement
	Version uint64
	Fresh   bool
}

// PullLSAsRequest relays a shadow node's LSA pull.
type PullLSAsRequest struct {
	Exporter string
	Puller   string
	Since    uint64
	Seen     bool
}

// PullLSAsReply carries the flooded LSAs.
type PullLSAsReply struct {
	LSAs    []*ospf.LSA
	Version uint64
	Fresh   bool
}

// ComputeDPReply summarizes FIB and predicate compilation.
type ComputeDPReply struct {
	FIBEntries int
	BDDNodes   int
	Errors     []string
}

// QueryRequest configures one property query on the workers.
type QueryRequest struct {
	Query dataplane.Query
}

// InjectRequest injects a symbolic packet at a source node (owned by the
// receiving worker). The packet is a serialized BDD.
type InjectRequest struct {
	Source string
	Packet []byte
}

// PacketDelivery is one symbolic packet crossing a worker boundary: it
// arrives at Node on port InPort (③→④→⑤ in the paper's Figure 3).
type PacketDelivery struct {
	Source string
	Node   string
	InPort string
	Packet []byte
}

// HasWorkReply reports whether a worker still has queued packets.
type HasWorkReply struct {
	Busy bool
}

// OutcomesReply returns a worker's finalized packets for the current query.
type OutcomesReply struct {
	Outcomes []dataplane.RawOutcome
}

// RIBsReply returns the merged per-node RIB contents.
type RIBsReply struct {
	Routes map[string][]*route.Route
}

// WorkerStats reports a worker's resource accounting.
type WorkerStats struct {
	WorkerID   int
	Nodes      int
	PeakBytes  int64
	NowBytes   int64
	BDDNodes   int
	RoutePulls int64 // cross-worker pulls served (communication metric)
	PacketsIn  int64 // cross-worker packet deliveries received
}

// WorkerAPI is the Go-level surface of a worker. The in-process
// core.Worker implements it directly; RemoteWorker implements it over RPC.
type WorkerAPI interface {
	Setup(req SetupRequest) error
	BeginShard(req BeginShardRequest) error
	GatherBGP() error
	ApplyBGP() (bool, error)
	GatherOSPF() error
	ApplyOSPF() (bool, error)
	EndShard() (EndShardReply, error)

	PullBGP(exporter, puller string, since uint64, seen bool) ([]bgp.Advertisement, uint64, bool, error)
	PullLSAs(exporter, puller string, since uint64, seen bool) ([]*ospf.LSA, uint64, bool, error)

	ComputeDP() (ComputeDPReply, error)
	BeginQuery(req QueryRequest) error
	Inject(req InjectRequest) error
	DPRound() error
	HasWork() (bool, error)
	DeliverPackets(items []PacketDelivery) error
	FinishQuery() ([]dataplane.RawOutcome, error)

	CollectRIBs() (map[string][]*route.Route, error)
	Stats() (WorkerStats, error)
}

// Empty is the placeholder for void RPC arguments/replies.
type Empty struct{}

// Service adapts a WorkerAPI to net/rpc method conventions. It is
// registered under the name "Sidecar".
type Service struct{ api WorkerAPI }

// NewService wraps a worker.
func NewService(api WorkerAPI) *Service { return &Service{api: api} }

// Setup RPC.
func (s *Service) Setup(req SetupRequest, _ *Empty) error { return s.api.Setup(req) }

// BeginShard RPC.
func (s *Service) BeginShard(req BeginShardRequest, _ *Empty) error { return s.api.BeginShard(req) }

// GatherBGP RPC.
func (s *Service) GatherBGP(_ Empty, _ *Empty) error { return s.api.GatherBGP() }

// ApplyBGP RPC.
func (s *Service) ApplyBGP(_ Empty, reply *ApplyReply) error {
	changed, err := s.api.ApplyBGP()
	reply.Changed = changed
	return err
}

// GatherOSPF RPC.
func (s *Service) GatherOSPF(_ Empty, _ *Empty) error { return s.api.GatherOSPF() }

// ApplyOSPF RPC.
func (s *Service) ApplyOSPF(_ Empty, reply *ApplyReply) error {
	changed, err := s.api.ApplyOSPF()
	reply.Changed = changed
	return err
}

// EndShard RPC.
func (s *Service) EndShard(_ Empty, reply *EndShardReply) error {
	r, err := s.api.EndShard()
	*reply = r
	return err
}

// PullBGP RPC.
func (s *Service) PullBGP(req PullBGPRequest, reply *PullBGPReply) error {
	advs, ver, fresh, err := s.api.PullBGP(req.Exporter, req.Puller, req.Since, req.Seen)
	reply.Advs, reply.Version, reply.Fresh = advs, ver, fresh
	return err
}

// PullLSAs RPC.
func (s *Service) PullLSAs(req PullLSAsRequest, reply *PullLSAsReply) error {
	lsas, ver, fresh, err := s.api.PullLSAs(req.Exporter, req.Puller, req.Since, req.Seen)
	reply.LSAs, reply.Version, reply.Fresh = lsas, ver, fresh
	return err
}

// ComputeDP RPC.
func (s *Service) ComputeDP(_ Empty, reply *ComputeDPReply) error {
	r, err := s.api.ComputeDP()
	*reply = r
	return err
}

// BeginQuery RPC.
func (s *Service) BeginQuery(req QueryRequest, _ *Empty) error { return s.api.BeginQuery(req) }

// Inject RPC.
func (s *Service) Inject(req InjectRequest, _ *Empty) error { return s.api.Inject(req) }

// DPRound RPC.
func (s *Service) DPRound(_ Empty, _ *Empty) error { return s.api.DPRound() }

// HasWork RPC.
func (s *Service) HasWork(_ Empty, reply *HasWorkReply) error {
	busy, err := s.api.HasWork()
	reply.Busy = busy
	return err
}

// DeliverPackets RPC.
func (s *Service) DeliverPackets(items []PacketDelivery, _ *Empty) error {
	return s.api.DeliverPackets(items)
}

// FinishQuery RPC.
func (s *Service) FinishQuery(_ Empty, reply *OutcomesReply) error {
	out, err := s.api.FinishQuery()
	reply.Outcomes = out
	return err
}

// CollectRIBs RPC.
func (s *Service) CollectRIBs(_ Empty, reply *RIBsReply) error {
	routes, err := s.api.CollectRIBs()
	reply.Routes = routes
	return err
}

// Stats RPC.
func (s *Service) Stats(_ Empty, reply *WorkerStats) error {
	st, err := s.api.Stats()
	*reply = st
	return err
}

// Serve registers the service on a fresh RPC server and accepts
// connections until the listener closes. It is the body of a sidecar
// process.
func Serve(api WorkerAPI, lis net.Listener) error {
	srv := rpc.NewServer()
	if err := srv.RegisterName("Sidecar", NewService(api)); err != nil {
		return err
	}
	for {
		conn, err := lis.Accept()
		if err != nil {
			return err
		}
		go srv.ServeConn(conn)
	}
}

// RemoteWorker is the client side: a WorkerAPI (and sim.PullPeer) that
// relays every call over RPC.
type RemoteWorker struct {
	addr string
	c    *rpc.Client
}

// Dial connects to a worker's sidecar.
func Dial(addr string) (*RemoteWorker, error) {
	c, err := rpc.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("sidecar: dialing %s: %w", addr, err)
	}
	return &RemoteWorker{addr: addr, c: c}, nil
}

// Addr returns the remote address.
func (r *RemoteWorker) Addr() string { return r.addr }

// Close tears down the connection.
func (r *RemoteWorker) Close() error { return r.c.Close() }

// Setup implements WorkerAPI.
func (r *RemoteWorker) Setup(req SetupRequest) error {
	return r.c.Call("Sidecar.Setup", req, &Empty{})
}

// BeginShard implements WorkerAPI.
func (r *RemoteWorker) BeginShard(req BeginShardRequest) error {
	return r.c.Call("Sidecar.BeginShard", req, &Empty{})
}

// GatherBGP implements WorkerAPI.
func (r *RemoteWorker) GatherBGP() error {
	return r.c.Call("Sidecar.GatherBGP", Empty{}, &Empty{})
}

// ApplyBGP implements WorkerAPI.
func (r *RemoteWorker) ApplyBGP() (bool, error) {
	var reply ApplyReply
	err := r.c.Call("Sidecar.ApplyBGP", Empty{}, &reply)
	return reply.Changed, err
}

// GatherOSPF implements WorkerAPI.
func (r *RemoteWorker) GatherOSPF() error {
	return r.c.Call("Sidecar.GatherOSPF", Empty{}, &Empty{})
}

// ApplyOSPF implements WorkerAPI.
func (r *RemoteWorker) ApplyOSPF() (bool, error) {
	var reply ApplyReply
	err := r.c.Call("Sidecar.ApplyOSPF", Empty{}, &reply)
	return reply.Changed, err
}

// EndShard implements WorkerAPI.
func (r *RemoteWorker) EndShard() (EndShardReply, error) {
	var reply EndShardReply
	err := r.c.Call("Sidecar.EndShard", Empty{}, &reply)
	return reply, err
}

// PullBGP implements WorkerAPI and sim.PullPeer.
func (r *RemoteWorker) PullBGP(exporter, puller string, since uint64, seen bool) ([]bgp.Advertisement, uint64, bool, error) {
	var reply PullBGPReply
	err := r.c.Call("Sidecar.PullBGP", PullBGPRequest{Exporter: exporter, Puller: puller, Since: since, Seen: seen}, &reply)
	return reply.Advs, reply.Version, reply.Fresh, err
}

// PullLSAs implements WorkerAPI and sim.PullPeer.
func (r *RemoteWorker) PullLSAs(exporter, puller string, since uint64, seen bool) ([]*ospf.LSA, uint64, bool, error) {
	var reply PullLSAsReply
	err := r.c.Call("Sidecar.PullLSAs", PullLSAsRequest{Exporter: exporter, Puller: puller, Since: since, Seen: seen}, &reply)
	return reply.LSAs, reply.Version, reply.Fresh, err
}

// ComputeDP implements WorkerAPI.
func (r *RemoteWorker) ComputeDP() (ComputeDPReply, error) {
	var reply ComputeDPReply
	err := r.c.Call("Sidecar.ComputeDP", Empty{}, &reply)
	return reply, err
}

// BeginQuery implements WorkerAPI.
func (r *RemoteWorker) BeginQuery(req QueryRequest) error {
	return r.c.Call("Sidecar.BeginQuery", req, &Empty{})
}

// Inject implements WorkerAPI.
func (r *RemoteWorker) Inject(req InjectRequest) error {
	return r.c.Call("Sidecar.Inject", req, &Empty{})
}

// DPRound implements WorkerAPI.
func (r *RemoteWorker) DPRound() error {
	return r.c.Call("Sidecar.DPRound", Empty{}, &Empty{})
}

// HasWork implements WorkerAPI.
func (r *RemoteWorker) HasWork() (bool, error) {
	var reply HasWorkReply
	err := r.c.Call("Sidecar.HasWork", Empty{}, &reply)
	return reply.Busy, err
}

// DeliverPackets implements WorkerAPI.
func (r *RemoteWorker) DeliverPackets(items []PacketDelivery) error {
	return r.c.Call("Sidecar.DeliverPackets", items, &Empty{})
}

// FinishQuery implements WorkerAPI.
func (r *RemoteWorker) FinishQuery() ([]dataplane.RawOutcome, error) {
	var reply OutcomesReply
	err := r.c.Call("Sidecar.FinishQuery", Empty{}, &reply)
	return reply.Outcomes, err
}

// CollectRIBs implements WorkerAPI.
func (r *RemoteWorker) CollectRIBs() (map[string][]*route.Route, error) {
	var reply RIBsReply
	err := r.c.Call("Sidecar.CollectRIBs", Empty{}, &reply)
	return reply.Routes, err
}

// Stats implements WorkerAPI.
func (r *RemoteWorker) Stats() (WorkerStats, error) {
	var reply WorkerStats
	err := r.c.Call("Sidecar.Stats", Empty{}, &reply)
	return reply, err
}
