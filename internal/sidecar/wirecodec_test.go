package sidecar

import (
	"reflect"
	"testing"

	"s2/internal/bgp"
	"s2/internal/ospf"
	"s2/internal/route"
)

func TestBGPWireCodecRoundTrip(t *testing.T) {
	mkRoute := func(addr uint32, nhNode string, path []uint32) *route.Route {
		return &route.Route{
			Prefix:       route.MakePrefix(addr, 24),
			Protocol:     route.BGP,
			NextHop:      0x0a000001,
			NextHopNode:  nhNode,
			Metric:       5,
			ASPath:       path,
			LocalPref:    100,
			Origin:       route.OriginIGP,
			Communities:  []route.Community{route.MakeCommunity(65000, 7)},
			OriginatorID: 0x01000002,
			PeerAS:       65002,
		}
	}
	cases := [][]PullBGPReply{
		nil,
		{},
		{{Version: 3, Fresh: false}},
		{
			{
				Version: 42,
				Fresh:   true,
				Advs: []bgp.Advertisement{
					{Route: mkRoute(0x0a800000, "edge-0-0", []uint32{65001, 65002})},
					{Route: mkRoute(0x0a800100, "edge-0-0", []uint32{65001})},
					{Route: mkRoute(0x0a800200, "agg-1-1", nil)},
				},
			},
			{Version: 7, Fresh: true, Advs: []bgp.Advertisement{{Route: mkRoute(0x0a800300, "edge-0-0", nil)}}},
			{Version: 9, Fresh: false},
		},
	}
	for i, replies := range cases {
		payload := EncodeBGPReplies(replies)
		got, err := DecodeBGPReplies(payload)
		if err != nil {
			t.Fatalf("case %d: decode: %v", i, err)
		}
		want := replies
		if want == nil {
			want = []PullBGPReply{}
		}
		if len(got) != len(want) {
			t.Fatalf("case %d: got %d replies, want %d", i, len(got), len(want))
		}
		for j := range want {
			if got[j].Version != want[j].Version || got[j].Fresh != want[j].Fresh {
				t.Fatalf("case %d reply %d: header mismatch: %+v vs %+v", i, j, got[j], want[j])
			}
			if len(got[j].Advs) != len(want[j].Advs) {
				t.Fatalf("case %d reply %d: %d advs, want %d", i, j, len(got[j].Advs), len(want[j].Advs))
			}
			for k := range want[j].Advs {
				if !got[j].Advs[k].Route.Equal(want[j].Advs[k].Route) {
					t.Fatalf("case %d reply %d adv %d: route mismatch:\n got %v\nwant %v",
						i, j, k, got[j].Advs[k].Route, want[j].Advs[k].Route)
				}
			}
		}
	}
}

func TestBGPWireCodecSmallerThanNaive(t *testing.T) {
	// Many routes sharing one next-hop node: the interned string table
	// should make repeats nearly free.
	var advs []bgp.Advertisement
	for i := 0; i < 200; i++ {
		advs = append(advs, bgp.Advertisement{Route: &route.Route{
			Prefix:      route.MakePrefix(0x0a800000+uint32(i)*256, 24),
			Protocol:    route.BGP,
			NextHopNode: "a-rather-long-device-hostname-0-0",
			ASPath:      []uint32{65001, 65002, 65003},
		}})
	}
	payload := EncodeBGPReplies([]PullBGPReply{{Version: 1, Fresh: true, Advs: advs}})
	naive := 200 * len("a-rather-long-device-hostname-0-0")
	if len(payload) >= naive {
		t.Fatalf("payload %d bytes, expected well under the %d bytes of repeated names alone", len(payload), naive)
	}
}

func TestLSAWireCodecRoundTrip(t *testing.T) {
	replies := []PullLSAsReply{
		{Version: 11, Fresh: true, LSAs: []*ospf.LSA{
			{
				Router:   "r1",
				RouterID: 0x01000001,
				Links:    []ospf.LSALink{{Neighbor: "r2", Cost: 10}, {Neighbor: "r3", Cost: 20}},
				Stubs:    []ospf.LSAStub{{Prefix: route.MakePrefix(0x0a800000, 24), Cost: 1}},
			},
			{Router: "r2", RouterID: 0x01000002, Links: []ospf.LSALink{{Neighbor: "r1", Cost: 10}}},
			nil,
		}},
		{Version: 12, Fresh: false},
	}
	payload := EncodeLSAReplies(replies)
	got, err := DecodeLSAReplies(payload)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(got, replies) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, replies)
	}
}

func TestWireCodecRejectsGarbage(t *testing.T) {
	if _, err := DecodeBGPReplies([]byte{0xff, 0xff, 0xff}); err == nil {
		t.Fatal("expected error on truncated payload")
	}
	good := EncodeBGPReplies([]PullBGPReply{{Version: 1, Fresh: true}})
	if _, err := DecodeBGPReplies(append(good, 0x00)); err == nil {
		t.Fatal("expected error on trailing bytes")
	}
}
