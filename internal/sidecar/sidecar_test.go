package sidecar

import (
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"s2/internal/bgp"
	"s2/internal/dataplane"
	"s2/internal/ospf"
	"s2/internal/route"
)

// stubWorker implements WorkerAPI with canned responses so the RPC plumbing
// can be tested without internal/core (which would be an import cycle in
// spirit: core depends on sidecar).
type stubWorker struct {
	setups    int
	pings     int
	delivered []PacketDelivery
	batch     DeliverBatchRequest
	failPull  bool
	slow      chan struct{} // when set, phase methods block until closed
}

func (s *stubWorker) Ping() error {
	s.pings++
	return nil
}

func (s *stubWorker) Setup(req SetupRequest) error {
	s.setups++
	if req.WorkerID < 0 {
		return errors.New("bad id")
	}
	return nil
}
func (s *stubWorker) BeginShard(BeginShardRequest) error { return nil }
func (s *stubWorker) GatherBGP() error {
	if s.slow != nil {
		<-s.slow
	}
	return nil
}
func (s *stubWorker) ApplyBGP() (ApplyReply, error) {
	return ApplyReply{Changed: true, ChangedNodes: 2, Routes: 17}, nil
}
func (s *stubWorker) GatherOSPF() error              { return nil }
func (s *stubWorker) ApplyOSPF() (ApplyReply, error) { return ApplyReply{}, nil }
func (s *stubWorker) EndShard() (EndShardReply, error) {
	return EndShardReply{Routes: 42, ModelBytes: 1000}, nil
}

func (s *stubWorker) PullBGP(exporter, puller string, since uint64, seen bool) ([]bgp.Advertisement, uint64, bool, error) {
	if s.failPull {
		return nil, 0, false, fmt.Errorf("no node %s", exporter)
	}
	r := &route.Route{Prefix: route.MustParsePrefix("10.0.0.0/24"), Protocol: route.BGP,
		ASPath: []uint32{65001}, LocalPref: 100}
	return []bgp.Advertisement{{Route: r}}, 9, true, nil
}

func (s *stubWorker) PullLSAs(exporter, puller string, since uint64, seen bool) ([]*ospf.LSA, uint64, bool, error) {
	return []*ospf.LSA{{Router: exporter, Stubs: []ospf.LSAStub{{Prefix: route.MustParsePrefix("10.0.0.0/31"), Cost: 1}}}}, 4, true, nil
}

func (s *stubWorker) PullBGPBatch(reqs []PullBGPRequest) ([]PullBGPReply, error) {
	replies := make([]PullBGPReply, len(reqs))
	for i, q := range reqs {
		advs, ver, fresh, err := s.PullBGP(q.Exporter, q.Puller, q.Since, q.Seen)
		if err != nil {
			return nil, err
		}
		replies[i] = PullBGPReply{Advs: advs, Version: ver, Fresh: fresh}
	}
	return replies, nil
}

func (s *stubWorker) PullLSABatch(reqs []PullLSAsRequest) ([]PullLSAsReply, error) {
	replies := make([]PullLSAsReply, len(reqs))
	for i, q := range reqs {
		lsas, ver, fresh, err := s.PullLSAs(q.Exporter, q.Puller, q.Since, q.Seen)
		if err != nil {
			return nil, err
		}
		replies[i] = PullLSAsReply{LSAs: lsas, Version: ver, Fresh: fresh}
	}
	return replies, nil
}

func (s *stubWorker) PullBGPBatchWire(reqs []PullBGPRequest) ([]PullBGPReply, error) {
	return s.PullBGPBatch(reqs)
}

func (s *stubWorker) PullLSABatchWire(reqs []PullLSAsRequest) ([]PullLSAsReply, error) {
	return s.PullLSABatch(reqs)
}

func (s *stubWorker) ApplyDelta(req DeltaRequest) (DeltaReply, error) {
	return DeltaReply{Devices: len(req.Configs)}, nil
}

func (s *stubWorker) ComputeDP() (ComputeDPReply, error) {
	return ComputeDPReply{FIBEntries: 7, BDDNodes: 100}, nil
}
func (s *stubWorker) BeginQuery(QueryRequest) error           { return nil }
func (s *stubWorker) BeginQueryBatch(QueryBatchRequest) error { return nil }
func (s *stubWorker) Inject(req InjectRequest) error {
	s.delivered = append(s.delivered, PacketDelivery{Source: req.Source, Node: req.Source, Packet: req.Packet})
	return nil
}
func (s *stubWorker) DPRound() error { return nil }
func (s *stubWorker) HasWork() (bool, error) {
	return len(s.delivered) > 0, nil
}
func (s *stubWorker) DeliverPackets(items []PacketDelivery) error {
	s.delivered = append(s.delivered, items...)
	return nil
}
func (s *stubWorker) DeliverBatch(req DeliverBatchRequest) (DeliverBatchReply, error) {
	s.batch = req
	return DeliverBatchReply{Reset: true}, nil
}
func (s *stubWorker) FinishQuery() (OutcomeBatch, error) {
	return OutcomeBatch{Outcomes: []dataplane.RawOutcome{{Source: "a", Node: "b", State: dataplane.Arrive, Packet: []byte{1}}}}, nil
}

func (s *stubWorker) CollectRIBs() (map[string][]*route.Route, error) {
	return map[string][]*route.Route{"r1": {{Prefix: route.MustParsePrefix("10.0.0.0/24")}}}, nil
}
func (s *stubWorker) Stats() (WorkerStats, error) {
	return WorkerStats{WorkerID: 3, Nodes: 5, PeakBytes: 2048}, nil
}
func (s *stubWorker) PullSpans(PullSpansRequest) (PullSpansReply, error) {
	return PullSpansReply{}, nil
}
func (s *stubWorker) PullStats(PullStatsRequest) (PullStatsReply, error) {
	return PullStatsReply{Vitals: WorkerVitals{WorkerID: 3, Shard: 2, Round: 7, BDDNodes: 100, NowUnixMicro: time.Now().UnixMicro()}}, nil
}
func (s *stubWorker) PullProfile(req PullProfileRequest) (PullProfileReply, error) {
	if req.Kind != "cpu" && req.Kind != "heap" {
		return PullProfileReply{}, fmt.Errorf("unknown kind %q", req.Kind)
	}
	return PullProfileReply{WorkerID: 3, Kind: req.Kind, Profile: []byte{0x1f, 0x8b}}, nil
}

func dialStub(t *testing.T) (*RemoteWorker, *stubWorker) {
	t.Helper()
	stub := &stubWorker{}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { lis.Close() })
	go Serve(stub, lis)
	client, err := Dial(lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close() })
	return client, stub
}

func TestRPCRoundTripAllMethods(t *testing.T) {
	client, stub := dialStub(t)
	if client.Addr() == "" {
		t.Error("Addr")
	}

	if err := client.Ping(); err != nil {
		t.Fatal(err)
	}
	if err := client.Setup(SetupRequest{WorkerID: 1}); err != nil {
		t.Fatal(err)
	}
	if stub.setups != 1 {
		t.Fatal("setup not delivered")
	}
	// Errors cross the wire.
	if err := client.Setup(SetupRequest{WorkerID: -1}); err == nil {
		t.Fatal("remote error must propagate")
	}

	if err := client.BeginShard(BeginShardRequest{Index: 2}); err != nil {
		t.Fatal(err)
	}
	if err := client.GatherBGP(); err != nil {
		t.Fatal(err)
	}
	bgpReply, err := client.ApplyBGP()
	if err != nil || !bgpReply.Changed || bgpReply.ChangedNodes != 2 || bgpReply.Routes != 17 {
		t.Fatalf("ApplyBGP reply: %+v %v", bgpReply, err)
	}
	if err := client.GatherOSPF(); err != nil {
		t.Fatal(err)
	}
	ospfReply, err := client.ApplyOSPF()
	if err != nil || ospfReply.Changed {
		t.Fatalf("ApplyOSPF reply: %+v %v", ospfReply, err)
	}
	end, err := client.EndShard()
	if err != nil || end.Routes != 42 || end.ModelBytes != 1000 {
		t.Fatalf("EndShard reply: %+v %v", end, err)
	}

	advs, ver, fresh, err := client.PullBGP("r9", "r1", 0, false)
	if err != nil || !fresh || ver != 9 || len(advs) != 1 {
		t.Fatalf("PullBGP: %v %d %v %v", advs, ver, fresh, err)
	}
	// Route attributes survive gob.
	if advs[0].Route.ASPath[0] != 65001 || advs[0].Route.Prefix.String() != "10.0.0.0/24" {
		t.Fatalf("route mangled: %+v", advs[0].Route)
	}
	stub.failPull = true
	if _, _, _, err := client.PullBGP("ghost", "r1", 0, false); err == nil {
		t.Fatal("pull error must propagate")
	}
	stub.failPull = false

	lsas, ver, fresh, err := client.PullLSAs("r9", "r1", 0, false)
	if err != nil || !fresh || ver != 4 || len(lsas) != 1 || len(lsas[0].Stubs) != 1 {
		t.Fatalf("PullLSAs: %v %d %v %v", lsas, ver, fresh, err)
	}

	// Batched pulls: one round trip, replies aligned with the requests.
	bgpBatch, err := client.PullBGPBatch([]PullBGPRequest{
		{Exporter: "r9", Puller: "r1"}, {Exporter: "r8", Puller: "r2", Since: 3, Seen: true},
	})
	if err != nil || len(bgpBatch) != 2 || bgpBatch[0].Version != 9 || !bgpBatch[1].Fresh {
		t.Fatalf("PullBGPBatch: %+v %v", bgpBatch, err)
	}
	lsaBatch, err := client.PullLSABatch([]PullLSAsRequest{{Exporter: "r7", Puller: "r1"}})
	if err != nil || len(lsaBatch) != 1 || lsaBatch[0].Version != 4 || lsaBatch[0].LSAs[0].Router != "r7" {
		t.Fatalf("PullLSABatch: %+v %v", lsaBatch, err)
	}

	dp, err := client.ComputeDP()
	if err != nil || dp.FIBEntries != 7 || dp.BDDNodes != 100 {
		t.Fatalf("ComputeDP: %+v %v", dp, err)
	}
	if err := client.BeginQuery(QueryRequest{Query: dataplane.Query{MaxHops: 5}}); err != nil {
		t.Fatal(err)
	}
	if err := client.Inject(InjectRequest{Source: "r1", Packet: []byte{1, 2}}); err != nil {
		t.Fatal(err)
	}
	if err := client.DPRound(); err != nil {
		t.Fatal(err)
	}
	busy, err := client.HasWork()
	if err != nil || !busy {
		t.Fatal("HasWork after inject")
	}
	if err := client.DeliverPackets([]PacketDelivery{{Source: "a", Node: "b", InPort: "eth0", Packet: []byte{3}}}); err != nil {
		t.Fatal(err)
	}
	if len(stub.delivered) != 2 {
		t.Fatalf("deliveries = %d", len(stub.delivered))
	}
	breply, err := client.DeliverBatch(DeliverBatchRequest{From: 1, Wire: []byte{9}, Items: []WirePacket{{Source: "a", Node: "b", Root: 2}}})
	if err != nil || !breply.Reset {
		t.Fatalf("DeliverBatch: %+v %v", breply, err)
	}
	if stub.batch.From != 1 || len(stub.batch.Items) != 1 || stub.batch.Items[0].Root != 2 {
		t.Fatalf("DeliverBatch payload: %+v", stub.batch)
	}
	batch, err := client.FinishQuery()
	if err != nil || len(batch.Outcomes) != 1 || batch.Outcomes[0].State != dataplane.Arrive {
		t.Fatalf("FinishQuery: %v %v", batch, err)
	}

	ribs, err := client.CollectRIBs()
	if err != nil || len(ribs["r1"]) != 1 {
		t.Fatalf("CollectRIBs: %v %v", ribs, err)
	}
	st, err := client.Stats()
	if err != nil || st.WorkerID != 3 || st.PeakBytes != 2048 {
		t.Fatalf("Stats: %+v %v", st, err)
	}

	vit, err := client.PullStats(PullStatsRequest{})
	if err != nil || vit.Vitals.WorkerID != 3 || vit.Vitals.Shard != 2 ||
		vit.Vitals.Round != 7 || vit.Vitals.BDDNodes != 100 || vit.Vitals.NowUnixMicro == 0 {
		t.Fatalf("PullStats: %+v %v", vit, err)
	}
	prof, err := client.PullProfile(PullProfileRequest{Kind: "heap"})
	if err != nil || prof.WorkerID != 3 || prof.Kind != "heap" || len(prof.Profile) != 2 {
		t.Fatalf("PullProfile: %+v %v", prof, err)
	}
	if _, err := client.PullProfile(PullProfileRequest{Kind: "bogus"}); err == nil {
		t.Fatal("PullProfile error must propagate")
	}
}

func TestDialFailure(t *testing.T) {
	if _, err := Dial("127.0.0.1:1"); err == nil {
		t.Fatal("dialing a closed port must fail")
	}
}

// timeoutWrap is a minimal CallWrapper bounding each call, standing in for
// fault.Caller (which sidecar cannot import without a cycle).
func timeoutWrap(d time.Duration) CallWrapper {
	return func(method string, idempotent bool, call func() error) error {
		done := make(chan error, 1)
		go func() { done <- call() }()
		select {
		case err := <-done:
			return err
		case <-time.After(d):
			return fmt.Errorf("%s deadline exceeded", method)
		}
	}
}

// TestDeadlineOnHungServer: a server that accepts but never answers must
// not hang a wrapped client.
func TestDeadlineOnHungServer(t *testing.T) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { lis.Close() })
	go func() {
		for {
			conn, err := lis.Accept()
			if err != nil {
				return
			}
			defer conn.Close() // hold the connection open, answer nothing
		}
	}()
	client, err := DialWrapped(lis.Addr().String(), time.Second, timeoutWrap(100*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close() })
	start := time.Now()
	if err := client.Ping(); err == nil {
		t.Fatal("Ping against a hung server must fail")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("deadline did not bound the call: took %v", elapsed)
	}
}

// TestServerGracefulDrain: Shutdown with a grace period rejects new RPCs
// but lets the in-flight one finish successfully.
func TestServerGracefulDrain(t *testing.T) {
	stub := &stubWorker{slow: make(chan struct{})}
	srv := NewServer(stub)
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(lis) }()
	client, err := Dial(lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close() })

	inflight := make(chan error, 1)
	go func() { inflight <- client.GatherBGP() }() // blocks on stub.slow
	time.Sleep(50 * time.Millisecond)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		srv.Shutdown(5 * time.Second)
	}()
	time.Sleep(50 * time.Millisecond)

	// New work is rejected while draining.
	if err := client.Ping(); err == nil || !strings.Contains(err.Error(), "draining") {
		t.Fatalf("Ping during drain: want draining error, got %v", err)
	}
	// The in-flight call completes cleanly.
	close(stub.slow)
	if err := <-inflight; err != nil {
		t.Fatalf("in-flight RPC failed during graceful drain: %v", err)
	}
	wg.Wait()
	if err := <-serveDone; err != nil {
		t.Fatalf("Serve returned %v after graceful shutdown", err)
	}
}

// TestServerAbruptShutdown: Shutdown(0) severs in-flight calls — the crash
// simulation used by the fault tests.
func TestServerAbruptShutdown(t *testing.T) {
	stub := &stubWorker{slow: make(chan struct{})}
	defer close(stub.slow)
	srv := NewServer(stub)
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(lis)
	client, err := Dial(lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close() })

	inflight := make(chan error, 1)
	go func() { inflight <- client.GatherBGP() }()
	time.Sleep(50 * time.Millisecond)
	srv.Shutdown(0)
	if err := <-inflight; err == nil {
		t.Fatal("in-flight RPC must fail on abrupt shutdown")
	}
}

// TestWrapperIdempotencyFlags verifies the retry-safety table the client
// hands to the fault layer: phase mutations must never be marked safe.
func TestWrapperIdempotencyFlags(t *testing.T) {
	flags := map[string]bool{}
	var mu sync.Mutex
	stub := &stubWorker{}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { lis.Close() })
	go Serve(stub, lis)
	client, err := DialWrapped(lis.Addr().String(), 0, func(method string, idempotent bool, call func() error) error {
		mu.Lock()
		flags[method] = idempotent
		mu.Unlock()
		return call()
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close() })

	client.Ping()
	client.Setup(SetupRequest{WorkerID: 1})
	client.GatherBGP()
	client.ApplyBGP()
	client.EndShard()
	client.PullBGP("r9", "r1", 0, false)
	client.PullBGPBatch([]PullBGPRequest{{Exporter: "r9", Puller: "r1"}})
	client.PullLSABatch([]PullLSAsRequest{{Exporter: "r9", Puller: "r1"}})
	client.Inject(InjectRequest{Source: "r1"})
	client.DPRound()
	client.DeliverPackets(nil)
	client.DeliverBatch(DeliverBatchRequest{From: 1})
	client.FinishQuery()
	client.Stats()

	want := map[string]bool{
		"Ping": true, "Setup": true, "PullBGP": true, "Stats": true,
		"PullBGPBatch": true, "PullLSABatch": true,
		"GatherBGP": false, "ApplyBGP": false, "EndShard": false,
		"Inject": false, "DPRound": false, "DeliverPackets": false,
		"DeliverBatch": false, "FinishQuery": false,
	}
	for m, idem := range want {
		got, ok := flags[m]
		if !ok {
			t.Errorf("%s never went through the wrapper", m)
		} else if got != idem {
			t.Errorf("%s idempotent = %v, want %v", m, got, idem)
		}
	}
}

// Interface conformance: both implementations satisfy WorkerAPI.
var (
	_ WorkerAPI = (*stubWorker)(nil)
	_ WorkerAPI = (*RemoteWorker)(nil)
)
