package sidecar

import (
	"encoding/binary"
	"fmt"

	"s2/internal/bgp"
	"s2/internal/ospf"
	"s2/internal/route"
)

// Control-plane wire codec: varint encoding for batch route-pull replies,
// replacing gob's self-describing struct streams on the hottest
// controller-free RPC path (shadow-node pulls between workers). Device
// names repeat heavily across a reply set — every route names its next-hop
// node, every LSA its router and neighbors — so strings are interned into
// an inline table: the first occurrence travels once, repeats are a 1-2
// byte reference. This extends the PR 4 shared-substrate idea (dedup what
// repeats across a batch) from BDD nodes to route attributes.

// wireEnc is an append-only varint writer with inline string interning.
type wireEnc struct {
	buf  []byte
	strs map[string]uint64
}

func newWireEnc() *wireEnc { return &wireEnc{strs: map[string]uint64{}} }

func (e *wireEnc) uvarint(v uint64) {
	e.buf = binary.AppendUvarint(e.buf, v)
}

func (e *wireEnc) byte(b byte) { e.buf = append(e.buf, b) }

func (e *wireEnc) bool(v bool) {
	if v {
		e.byte(1)
	} else {
		e.byte(0)
	}
}

// str writes a string reference: 0 followed by length+bytes on first
// occurrence (which assigns the next table id), or id+1 for a repeat.
func (e *wireEnc) str(s string) {
	if id, ok := e.strs[s]; ok {
		e.uvarint(id + 1)
		return
	}
	e.strs[s] = uint64(len(e.strs))
	e.uvarint(0)
	e.uvarint(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

// wireDec mirrors wireEnc.
type wireDec struct {
	buf   []byte
	table []string
}

func (d *wireDec) uvarint() (uint64, error) {
	v, n := binary.Uvarint(d.buf)
	if n <= 0 {
		return 0, fmt.Errorf("sidecar: wire codec: truncated varint")
	}
	d.buf = d.buf[n:]
	return v, nil
}

func (d *wireDec) byte() (byte, error) {
	if len(d.buf) == 0 {
		return 0, fmt.Errorf("sidecar: wire codec: truncated byte")
	}
	b := d.buf[0]
	d.buf = d.buf[1:]
	return b, nil
}

func (d *wireDec) bool() (bool, error) {
	b, err := d.byte()
	return b != 0, err
}

func (d *wireDec) str() (string, error) {
	ref, err := d.uvarint()
	if err != nil {
		return "", err
	}
	if ref > 0 {
		if ref-1 >= uint64(len(d.table)) {
			return "", fmt.Errorf("sidecar: wire codec: string ref %d out of table (%d entries)", ref-1, len(d.table))
		}
		return d.table[ref-1], nil
	}
	n, err := d.uvarint()
	if err != nil {
		return "", err
	}
	if n > uint64(len(d.buf)) {
		return "", fmt.Errorf("sidecar: wire codec: string length %d exceeds remaining %d bytes", n, len(d.buf))
	}
	s := string(d.buf[:n])
	d.buf = d.buf[n:]
	d.table = append(d.table, s)
	return s, nil
}

func (e *wireEnc) route(r *route.Route) {
	if r == nil {
		e.bool(false)
		return
	}
	e.bool(true)
	e.uvarint(uint64(r.Prefix.Addr))
	e.byte(r.Prefix.Len)
	e.byte(byte(r.Protocol))
	e.uvarint(uint64(r.NextHop))
	e.str(r.NextHopNode)
	e.uvarint(uint64(r.Metric))
	e.uvarint(uint64(len(r.ASPath)))
	for _, a := range r.ASPath {
		e.uvarint(uint64(a))
	}
	e.uvarint(uint64(r.LocalPref))
	e.byte(byte(r.Origin))
	e.uvarint(uint64(len(r.Communities)))
	for _, c := range r.Communities {
		e.uvarint(uint64(c))
	}
	e.uvarint(uint64(r.OriginatorID))
	e.uvarint(uint64(r.PeerAS))
}

func (d *wireDec) route() (*route.Route, error) {
	present, err := d.bool()
	if err != nil || !present {
		return nil, err
	}
	r := &route.Route{}
	addr, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	plen, err := d.byte()
	if err != nil {
		return nil, err
	}
	r.Prefix = route.Prefix{Addr: uint32(addr), Len: plen}
	proto, err := d.byte()
	if err != nil {
		return nil, err
	}
	r.Protocol = route.Protocol(proto)
	nh, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	r.NextHop = uint32(nh)
	if r.NextHopNode, err = d.str(); err != nil {
		return nil, err
	}
	metric, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	r.Metric = uint32(metric)
	n, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	if n > 0 {
		r.ASPath = make([]uint32, n)
		for i := range r.ASPath {
			a, err := d.uvarint()
			if err != nil {
				return nil, err
			}
			r.ASPath[i] = uint32(a)
		}
	}
	lp, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	r.LocalPref = uint32(lp)
	origin, err := d.byte()
	if err != nil {
		return nil, err
	}
	r.Origin = route.Origin(origin)
	if n, err = d.uvarint(); err != nil {
		return nil, err
	}
	if n > 0 {
		r.Communities = make([]route.Community, n)
		for i := range r.Communities {
			c, err := d.uvarint()
			if err != nil {
				return nil, err
			}
			r.Communities[i] = route.Community(c)
		}
	}
	oid, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	r.OriginatorID = uint32(oid)
	pas, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	r.PeerAS = uint32(pas)
	return r, nil
}

// EncodeBGPReplies packs a batch-pull reply set into the varint wire form.
func EncodeBGPReplies(replies []PullBGPReply) []byte {
	e := newWireEnc()
	e.uvarint(uint64(len(replies)))
	for _, rep := range replies {
		e.uvarint(rep.Version)
		e.bool(rep.Fresh)
		e.uvarint(uint64(len(rep.Advs)))
		for _, adv := range rep.Advs {
			e.route(adv.Route)
		}
	}
	return e.buf
}

// DecodeBGPReplies unpacks EncodeBGPReplies output.
func DecodeBGPReplies(payload []byte) ([]PullBGPReply, error) {
	d := &wireDec{buf: payload}
	n, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	replies := make([]PullBGPReply, n)
	for i := range replies {
		if replies[i].Version, err = d.uvarint(); err != nil {
			return nil, err
		}
		if replies[i].Fresh, err = d.bool(); err != nil {
			return nil, err
		}
		na, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		if na == 0 {
			continue
		}
		replies[i].Advs = make([]bgp.Advertisement, na)
		for j := range replies[i].Advs {
			r, err := d.route()
			if err != nil {
				return nil, err
			}
			replies[i].Advs[j].Route = r
		}
	}
	if len(d.buf) != 0 {
		return nil, fmt.Errorf("sidecar: wire codec: %d trailing bytes", len(d.buf))
	}
	return replies, nil
}

// EncodeLSAReplies packs an LSA batch-pull reply set into the varint wire
// form.
func EncodeLSAReplies(replies []PullLSAsReply) []byte {
	e := newWireEnc()
	e.uvarint(uint64(len(replies)))
	for _, rep := range replies {
		e.uvarint(rep.Version)
		e.bool(rep.Fresh)
		e.uvarint(uint64(len(rep.LSAs)))
		for _, lsa := range rep.LSAs {
			if lsa == nil {
				e.bool(false)
				continue
			}
			e.bool(true)
			e.str(lsa.Router)
			e.uvarint(uint64(lsa.RouterID))
			e.uvarint(uint64(len(lsa.Links)))
			for _, l := range lsa.Links {
				e.str(l.Neighbor)
				e.uvarint(uint64(l.Cost))
			}
			e.uvarint(uint64(len(lsa.Stubs)))
			for _, s := range lsa.Stubs {
				e.uvarint(uint64(s.Prefix.Addr))
				e.byte(s.Prefix.Len)
				e.uvarint(uint64(s.Cost))
			}
		}
	}
	return e.buf
}

// DecodeLSAReplies unpacks EncodeLSAReplies output.
func DecodeLSAReplies(payload []byte) ([]PullLSAsReply, error) {
	d := &wireDec{buf: payload}
	n, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	replies := make([]PullLSAsReply, n)
	for i := range replies {
		if replies[i].Version, err = d.uvarint(); err != nil {
			return nil, err
		}
		if replies[i].Fresh, err = d.bool(); err != nil {
			return nil, err
		}
		nl, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		if nl == 0 {
			continue
		}
		replies[i].LSAs = make([]*ospf.LSA, nl)
		for j := range replies[i].LSAs {
			present, err := d.bool()
			if err != nil {
				return nil, err
			}
			if !present {
				continue
			}
			lsa := &ospf.LSA{}
			if lsa.Router, err = d.str(); err != nil {
				return nil, err
			}
			rid, err := d.uvarint()
			if err != nil {
				return nil, err
			}
			lsa.RouterID = uint32(rid)
			nlinks, err := d.uvarint()
			if err != nil {
				return nil, err
			}
			if nlinks > 0 {
				lsa.Links = make([]ospf.LSALink, nlinks)
				for k := range lsa.Links {
					if lsa.Links[k].Neighbor, err = d.str(); err != nil {
						return nil, err
					}
					cost, err := d.uvarint()
					if err != nil {
						return nil, err
					}
					lsa.Links[k].Cost = uint32(cost)
				}
			}
			nstubs, err := d.uvarint()
			if err != nil {
				return nil, err
			}
			if nstubs > 0 {
				lsa.Stubs = make([]ospf.LSAStub, nstubs)
				for k := range lsa.Stubs {
					addr, err := d.uvarint()
					if err != nil {
						return nil, err
					}
					plen, err := d.byte()
					if err != nil {
						return nil, err
					}
					lsa.Stubs[k].Prefix = route.Prefix{Addr: uint32(addr), Len: plen}
					cost, err := d.uvarint()
					if err != nil {
						return nil, err
					}
					lsa.Stubs[k].Cost = uint32(cost)
				}
			}
			replies[i].LSAs[j] = lsa
		}
	}
	if len(d.buf) != 0 {
		return nil, fmt.Errorf("sidecar: wire codec: %d trailing bytes", len(d.buf))
	}
	return replies, nil
}
