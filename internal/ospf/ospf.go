// Package ospf implements a single-area OSPF model that fits S2's pull-based
// distributed simulation: link-state advertisements flood between neighbors
// round by round (the same exchange pattern as BGP in Algorithm 1), and each
// node runs Dijkstra locally over its link-state database once flooding
// converges. The CPO schedules OSPF before BGP so redistributed IGP routes
// are available (§4.2, "IGP protocols before EGP").
package ospf

import (
	"sort"
	"sync"

	"s2/internal/config"
	"s2/internal/metrics"
	"s2/internal/route"
	"s2/internal/topology"
)

// LSALink describes one point-to-point adjacency in a router LSA.
type LSALink struct {
	Neighbor string
	Cost     uint32
}

// LSAStub describes one advertised prefix in a router LSA.
type LSAStub struct {
	Prefix route.Prefix
	Cost   uint32
}

// LSA is a router link-state advertisement. Configurations are static, so a
// single LSA per router suffices (no sequence numbers or aging).
type LSA struct {
	Router   string
	RouterID uint32
	Links    []LSALink
	Stubs    []LSAStub
}

// ModelBytes is the modelled memory footprint of an LSA in a node's LSDB.
func (l *LSA) ModelBytes() int64 {
	return 64 + int64(len(l.Router)) + int64(len(l.Links))*24 + int64(len(l.Stubs))*16
}

func (l *LSA) equal(o *LSA) bool {
	if l.Router != o.Router || l.RouterID != o.RouterID ||
		len(l.Links) != len(o.Links) || len(l.Stubs) != len(o.Stubs) {
		return false
	}
	for i := range l.Links {
		if l.Links[i] != o.Links[i] {
			return false
		}
	}
	for i := range l.Stubs {
		if l.Stubs[i] != o.Stubs[i] {
			return false
		}
	}
	return true
}

// Process is the OSPF speaker for one device. Like bgp.Process, a mutex
// serializes the entry points parallel node tasks share: gather tasks for
// many pullers call LSAsTo on the same exporter while only the owner's
// apply task calls MergeLSAs/RunSPF — but those phases themselves run
// concurrently across nodes, so every state-touching method locks.
type Process struct {
	mu   sync.Mutex
	dev  *config.Device
	cfg  *config.OSPFConfig
	adjs []topology.Adjacency
	lsdb map[string]*LSA
	self *LSA
	// version increments when the LSDB changes; neighbors pull with their
	// last-seen version.
	version uint64
	routes  *route.RIB
	filter  func(route.Prefix) bool
	tracker *metrics.Tracker
}

// NewProcess builds the OSPF speaker. adjs are the device's layer-3
// adjacencies from the topology; tracker (optional) receives memory gauges.
func NewProcess(dev *config.Device, adjs []topology.Adjacency, tracker *metrics.Tracker) *Process {
	p := &Process{
		dev:     dev,
		cfg:     dev.OSPF,
		adjs:    adjs,
		lsdb:    make(map[string]*LSA),
		routes:  route.NewRIB(),
		tracker: tracker,
	}
	p.self = p.buildSelfLSA()
	p.lsdb[p.self.Router] = p.self
	p.version = 1
	p.updateGauges()
	return p
}

// enabledOn reports whether OSPF runs on an interface subnet.
func (p *Process) enabledOn(subnet route.Prefix) bool {
	if len(p.cfg.Networks) == 0 {
		return true
	}
	for _, n := range p.cfg.Networks {
		if n.Covers(subnet) {
			return true
		}
	}
	return false
}

// buildSelfLSA derives this router's LSA from its configuration and
// adjacencies.
func (p *Process) buildSelfLSA() *LSA {
	lsa := &LSA{Router: p.dev.Hostname, RouterID: p.cfg.RouterID}

	// Stub prefixes: every enabled, addressed, non-shutdown interface.
	seen := map[route.Prefix]bool{}
	names := p.dev.InterfaceNames()
	for _, name := range names {
		ifc := p.dev.Interfaces[name]
		if ifc.Shutdown || ifc.IP == 0 || !p.enabledOn(ifc.Subnet) {
			continue
		}
		if !seen[ifc.Subnet] {
			seen[ifc.Subnet] = true
			lsa.Stubs = append(lsa.Stubs, LSAStub{Prefix: ifc.Subnet, Cost: ifc.OSPFCost})
		}
	}
	sort.Slice(lsa.Stubs, func(i, j int) bool { return lsa.Stubs[i].Prefix.Compare(lsa.Stubs[j].Prefix) < 0 })

	// Links: adjacencies over enabled, non-passive interfaces.
	for _, adj := range p.adjs {
		ifc := p.dev.Interfaces[adj.LocalIfc]
		if ifc == nil || ifc.Shutdown || !p.enabledOn(ifc.Subnet) || p.cfg.Passive[adj.LocalIfc] {
			continue
		}
		lsa.Links = append(lsa.Links, LSALink{Neighbor: adj.Neighbor, Cost: ifc.OSPFCost})
	}
	sort.Slice(lsa.Links, func(i, j int) bool {
		if lsa.Links[i].Neighbor != lsa.Links[j].Neighbor {
			return lsa.Links[i].Neighbor < lsa.Links[j].Neighbor
		}
		return lsa.Links[i].Cost < lsa.Links[j].Cost
	})
	return lsa
}

// Version returns the LSDB version.
func (p *Process) Version() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.version
}

// Routes returns the computed OSPF RIB.
func (p *Process) Routes() *route.RIB {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.routes
}

// NeighborNames returns adjacent OSPF-capable device names, sorted and
// deduplicated.
func (p *Process) NeighborNames() []string {
	seen := map[string]bool{}
	var out []string
	for _, l := range p.self.Links {
		if !seen[l.Neighbor] {
			seen[l.Neighbor] = true
			out = append(out, l.Neighbor)
		}
	}
	sort.Strings(out)
	return out
}

// SetPrefixFilter restricts which prefixes SPF installs (shard support).
func (p *Process) SetPrefixFilter(f func(route.Prefix) bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.filter = f
}

// LSAsTo returns the full LSDB if it changed since sinceVersion. OSPF floods
// the database rather than per-neighbor exports, so the neighbor argument
// only exists for interface symmetry with BGP.
func (p *Process) LSAsTo(_ string, sinceVersion uint64, haveSeen bool) ([]*LSA, uint64, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if haveSeen && sinceVersion == p.version {
		return nil, p.version, false
	}
	out := make([]*LSA, 0, len(p.lsdb))
	for _, name := range p.sortedLSDB() {
		out = append(out, p.lsdb[name])
	}
	return out, p.version, true
}

func (p *Process) sortedLSDB() []string {
	names := make([]string, 0, len(p.lsdb))
	for n := range p.lsdb {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// MergeLSAs integrates flooded LSAs, reporting whether the LSDB changed.
func (p *Process) MergeLSAs(lsas []*LSA) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	changed := false
	for _, lsa := range lsas {
		if lsa.Router == p.self.Router {
			continue // own LSA is authoritative
		}
		if old, ok := p.lsdb[lsa.Router]; ok && old.equal(lsa) {
			continue
		}
		p.lsdb[lsa.Router] = lsa
		changed = true
	}
	if changed {
		p.version++
		p.updateGauges()
	}
	return changed
}

// RunSPF recomputes routes from the LSDB (Dijkstra with ECMP), reporting
// whether the route table changed.
func (p *Process) RunSPF() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	const inf = ^uint64(0)

	dist := map[string]uint64{p.self.Router: 0}
	// firstHops tracks the set of first-hop neighbor device names on
	// shortest paths to each router.
	firstHops := map[string]map[string]bool{p.self.Router: {}}

	visited := map[string]bool{}
	for {
		// Extract unvisited min-dist router (deterministic tie-break by name).
		cur, curDist := "", inf
		for _, name := range p.sortedLSDB() {
			if d, ok := dist[name]; ok && !visited[name] && (d < curDist || (d == curDist && name < cur)) {
				cur, curDist = name, d
			}
		}
		if cur == "" {
			break
		}
		visited[cur] = true
		lsa := p.lsdb[cur]
		for _, link := range lsa.Links {
			nb, ok := p.lsdb[link.Neighbor]
			if !ok || !hasReverseLink(nb, cur) {
				continue // two-way connectivity check
			}
			nd := curDist + uint64(link.Cost)
			od, seen := dist[link.Neighbor]
			if !seen || nd < od {
				dist[link.Neighbor] = nd
				firstHops[link.Neighbor] = p.firstHopsVia(cur, link.Neighbor, firstHops)
			} else if nd == od {
				for h := range p.firstHopsVia(cur, link.Neighbor, firstHops) {
					firstHops[link.Neighbor][h] = true
				}
			}
		}
	}

	// Install stub routes.
	type best struct {
		cost uint64
		hops map[string]bool
	}
	bests := map[route.Prefix]*best{}
	for router, d := range dist {
		lsa := p.lsdb[router]
		for _, stub := range lsa.Stubs {
			if p.filter != nil && !p.filter(stub.Prefix) {
				continue
			}
			total := d + uint64(stub.Cost)
			b, ok := bests[stub.Prefix]
			if !ok || total < b.cost {
				bests[stub.Prefix] = &best{cost: total, hops: copySet(firstHops[router])}
			} else if total == b.cost {
				for h := range firstHops[router] {
					b.hops[h] = true
				}
			}
		}
	}

	next := route.NewRIB()
	for pfx, b := range bests {
		if len(b.hops) == 0 {
			continue // local prefix; connected route covers it
		}
		var rs []*route.Route
		hops := make([]string, 0, len(b.hops))
		for h := range b.hops {
			hops = append(hops, h)
		}
		sort.Strings(hops)
		if p.cfg.MaxPaths >= 1 && len(hops) > p.cfg.MaxPaths {
			hops = hops[:p.cfg.MaxPaths]
		}
		for _, h := range hops {
			adj := p.adjacencyTo(h)
			if adj == nil {
				continue
			}
			rs = append(rs, &route.Route{
				Prefix:      pfx,
				Protocol:    route.OSPF,
				NextHop:     adj.RemoteIP,
				NextHopNode: h,
				Metric:      uint32(b.cost),
			})
		}
		next.SetRoutes(pfx, rs)
	}
	changed := !next.Equal(p.routes)
	p.routes = next
	p.updateGauges()
	return changed
}

// firstHopsVia returns the first-hop set for reaching target through cur:
// if cur is self, the first hop is the target itself; otherwise it inherits
// cur's first hops.
func (p *Process) firstHopsVia(cur, target string, firstHops map[string]map[string]bool) map[string]bool {
	if cur == p.self.Router {
		return map[string]bool{target: true}
	}
	return copySet(firstHops[cur])
}

func copySet(s map[string]bool) map[string]bool {
	out := make(map[string]bool, len(s))
	for k := range s {
		out[k] = true
	}
	return out
}

func hasReverseLink(lsa *LSA, router string) bool {
	for _, l := range lsa.Links {
		if l.Neighbor == router {
			return true
		}
	}
	return false
}

// adjacencyTo returns the lowest-cost adjacency to a neighbor device.
func (p *Process) adjacencyTo(neighbor string) *topology.Adjacency {
	var bestAdj *topology.Adjacency
	var bestCost uint32
	for i := range p.adjs {
		adj := &p.adjs[i]
		if adj.Neighbor != neighbor {
			continue
		}
		ifc := p.dev.Interfaces[adj.LocalIfc]
		if ifc == nil || ifc.Shutdown {
			continue
		}
		if bestAdj == nil || ifc.OSPFCost < bestCost {
			bestAdj, bestCost = adj, ifc.OSPFCost
		}
	}
	return bestAdj
}

func (p *Process) updateGauges() {
	if p.tracker == nil {
		return
	}
	var lsdbBytes int64
	for _, lsa := range p.lsdb {
		lsdbBytes += lsa.ModelBytes()
	}
	p.tracker.Set("ospf.lsdb."+p.dev.Hostname, lsdbBytes)
	p.tracker.Set("ospf.rib."+p.dev.Hostname, p.routes.ModelBytes())
}
