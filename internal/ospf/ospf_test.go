package ospf

import (
	"fmt"
	"testing"

	"s2/internal/config"
	"s2/internal/metrics"
	"s2/internal/route"
	"s2/internal/topology"
)

func buildProcs(t *testing.T, texts map[string]string) map[string]*Process {
	t.Helper()
	snap, err := config.ParseTexts(texts)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	net, err := topology.Build(snap)
	if err != nil {
		t.Fatalf("topology: %v", err)
	}
	procs := map[string]*Process{}
	for name, dev := range snap.Devices {
		if dev.OSPF != nil {
			procs[name] = NewProcess(dev, net.Adjacencies[name], nil)
		}
	}
	return procs
}

// runFlooding runs rounds of LSDB exchange + SPF until quiescent.
func runFlooding(t *testing.T, procs map[string]*Process) {
	t.Helper()
	type st struct {
		ver  uint64
		seen bool
	}
	pulls := map[[2]string]*st{}
	for round := 0; round < 64; round++ {
		changed := false
		for name, p := range procs {
			for _, nb := range p.NeighborNames() {
				exp, ok := procs[nb]
				if !ok {
					continue
				}
				key := [2]string{name, nb}
				s := pulls[key]
				if s == nil {
					s = &st{}
					pulls[key] = s
				}
				lsas, ver, fresh := exp.LSAsTo(name, s.ver, s.seen)
				if fresh {
					s.ver, s.seen = ver, true
					if p.MergeLSAs(lsas) {
						changed = true
					}
				}
			}
			if p.RunSPF() {
				changed = true
			}
		}
		if !changed {
			return
		}
	}
	t.Fatal("flooding did not converge")
}

// lineTexts builds a chain r1-r2-r3 with a loopback on r1 and per-link
// costs.
func lineTexts(cost12, cost23 uint32) map[string]string {
	return map[string]string{
		"r1.cfg": fmt.Sprintf(`hostname r1
interface eth0
 ip address 10.0.0.0/31
 ip ospf cost %d
interface lo0
 ip address 192.168.0.1/32
router ospf 1
 router-id 0.0.0.1
 maximum-paths 4
`, cost12),
		"r2.cfg": fmt.Sprintf(`hostname r2
interface eth0
 ip address 10.0.0.1/31
 ip ospf cost %d
interface eth1
 ip address 10.0.1.0/31
 ip ospf cost %d
router ospf 1
 router-id 0.0.0.2
 maximum-paths 4
`, cost12, cost23),
		"r3.cfg": fmt.Sprintf(`hostname r3
interface eth0
 ip address 10.0.1.1/31
 ip ospf cost %d
router ospf 1
 router-id 0.0.0.3
 maximum-paths 4
`, cost23),
	}
}

func TestChainSPF(t *testing.T) {
	procs := buildProcs(t, lineTexts(10, 20))
	runFlooding(t, procs)

	lo := route.MustParsePrefix("192.168.0.1/32")
	got := procs["r3"].Routes().Get(lo)
	if len(got) != 1 {
		t.Fatalf("r3 routes to loopback = %v", got)
	}
	r := got[0]
	if r.NextHopNode != "r2" || r.Protocol != route.OSPF {
		t.Errorf("route = %+v", r)
	}
	// Cost: r3->r2 (20) + r2->r1 (10) + stub cost (1, default lo0 cost).
	if r.Metric != 31 {
		t.Errorf("metric = %d, want 31", r.Metric)
	}
	// r2 reaches it directly.
	got2 := procs["r2"].Routes().Get(lo)
	if len(got2) != 1 || got2[0].NextHopNode != "r1" || got2[0].Metric != 11 {
		t.Errorf("r2 route = %v", got2)
	}
	// r1's own prefix is not installed as an OSPF route.
	if len(procs["r1"].Routes().Get(lo)) != 0 {
		t.Error("local prefixes are covered by connected routes, not OSPF")
	}
}

func TestECMPAcrossParallelPaths(t *testing.T) {
	// Diamond: r1-(r2,r3)-r4 equal costs; r4 has a loopback.
	texts := map[string]string{
		"r1.cfg": `hostname r1
interface a
 ip address 10.0.1.0/31
interface b
 ip address 10.0.2.0/31
router ospf 1
 router-id 0.0.0.1
 maximum-paths 4
`,
		"r2.cfg": `hostname r2
interface a
 ip address 10.0.1.1/31
interface b
 ip address 10.0.3.0/31
router ospf 1
 router-id 0.0.0.2
 maximum-paths 4
`,
		"r3.cfg": `hostname r3
interface a
 ip address 10.0.2.1/31
interface b
 ip address 10.0.4.0/31
router ospf 1
 router-id 0.0.0.3
 maximum-paths 4
`,
		"r4.cfg": `hostname r4
interface a
 ip address 10.0.3.1/31
interface b
 ip address 10.0.4.1/31
interface lo0
 ip address 192.168.4.1/32
router ospf 1
 router-id 0.0.0.4
 maximum-paths 4
`,
	}
	procs := buildProcs(t, texts)
	runFlooding(t, procs)
	got := procs["r1"].Routes().Get(route.MustParsePrefix("192.168.4.1/32"))
	if len(got) != 2 {
		t.Fatalf("want 2 ECMP paths, got %v", got)
	}
	hops := map[string]bool{}
	for _, r := range got {
		hops[r.NextHopNode] = true
	}
	if !hops["r2"] || !hops["r3"] {
		t.Errorf("hops = %v", hops)
	}

	// With maximum-paths 1 only one survives (deterministic).
	texts["r1.cfg"] = `hostname r1
interface a
 ip address 10.0.1.0/31
interface b
 ip address 10.0.2.0/31
router ospf 1
 router-id 0.0.0.1
 maximum-paths 1
`
	procs1 := buildProcs(t, texts)
	runFlooding(t, procs1)
	got1 := procs1["r1"].Routes().Get(route.MustParsePrefix("192.168.4.1/32"))
	if len(got1) != 1 || got1[0].NextHopNode != "r2" {
		t.Fatalf("maximum-paths 1: %v", got1)
	}
}

func TestCostsSteerSPF(t *testing.T) {
	// Same diamond but the r1-r2 leg is expensive: all traffic via r3.
	texts := map[string]string{
		"r1.cfg": `hostname r1
interface a
 ip address 10.0.1.0/31
 ip ospf cost 100
interface b
 ip address 10.0.2.0/31
router ospf 1
 router-id 0.0.0.1
 maximum-paths 4
`,
		"r2.cfg": `hostname r2
interface a
 ip address 10.0.1.1/31
interface b
 ip address 10.0.3.0/31
router ospf 1
 router-id 0.0.0.2
 maximum-paths 4
`,
		"r3.cfg": `hostname r3
interface a
 ip address 10.0.2.1/31
interface b
 ip address 10.0.4.0/31
router ospf 1
 router-id 0.0.0.3
 maximum-paths 4
`,
		"r4.cfg": `hostname r4
interface a
 ip address 10.0.3.1/31
interface b
 ip address 10.0.4.1/31
interface lo0
 ip address 192.168.4.1/32
router ospf 1
 router-id 0.0.0.4
 maximum-paths 4
`,
	}
	procs := buildProcs(t, texts)
	runFlooding(t, procs)
	got := procs["r1"].Routes().Get(route.MustParsePrefix("192.168.4.1/32"))
	if len(got) != 1 || got[0].NextHopNode != "r3" {
		t.Fatalf("expensive leg should lose: %v", got)
	}
}

func TestPassiveInterfaceAdvertisesButNoAdjacency(t *testing.T) {
	texts := lineTexts(10, 20)
	// Make r2's interface toward r3 passive: r3 is cut off from r1's
	// loopback (no adjacency), but r2 still advertises the 10.0.1.0/31
	// stub so r1 can reach that subnet.
	texts["r2.cfg"] = `hostname r2
interface eth0
 ip address 10.0.0.1/31
 ip ospf cost 10
interface eth1
 ip address 10.0.1.0/31
 ip ospf cost 20
router ospf 1
 router-id 0.0.0.2
 maximum-paths 4
 passive-interface eth1
`
	procs := buildProcs(t, texts)
	runFlooding(t, procs)
	if got := procs["r3"].Routes().Get(route.MustParsePrefix("192.168.0.1/32")); len(got) != 0 {
		t.Fatalf("passive interface must not form adjacency: %v", got)
	}
	if got := procs["r1"].Routes().Get(route.MustParsePrefix("10.0.1.0/31")); len(got) != 1 {
		t.Fatalf("passive subnet still advertised as stub: %v", got)
	}
}

func TestNetworkStatementLimitsScope(t *testing.T) {
	texts := lineTexts(10, 20)
	// r1 enables OSPF only on the link subnet: the loopback is not
	// advertised.
	texts["r1.cfg"] = `hostname r1
interface eth0
 ip address 10.0.0.0/31
 ip ospf cost 10
interface lo0
 ip address 192.168.0.1/32
router ospf 1
 router-id 0.0.0.1
 network 10.0.0.0/16 area 0
`
	procs := buildProcs(t, texts)
	runFlooding(t, procs)
	if got := procs["r2"].Routes().Get(route.MustParsePrefix("192.168.0.1/32")); len(got) != 0 {
		t.Fatalf("un-enabled loopback must not be advertised: %v", got)
	}
}

func TestPrefixFilterShardsSPF(t *testing.T) {
	procs := buildProcs(t, lineTexts(10, 20))
	lo := route.MustParsePrefix("192.168.0.1/32")
	for _, p := range procs {
		p.SetPrefixFilter(func(x route.Prefix) bool { return x != lo })
	}
	runFlooding(t, procs)
	if got := procs["r3"].Routes().Get(lo); len(got) != 0 {
		t.Fatal("filtered prefix must not be installed")
	}
	if procs["r3"].Routes().Len() == 0 {
		t.Fatal("unfiltered prefixes still installed")
	}
}

func TestMemoryGauges(t *testing.T) {
	snap, err := config.ParseTexts(lineTexts(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	net, err := topology.Build(snap)
	if err != nil {
		t.Fatal(err)
	}
	tr := metrics.NewTracker("w", 0)
	procs := map[string]*Process{}
	for name, dev := range snap.Devices {
		procs[name] = NewProcess(dev, net.Adjacencies[name], tr)
	}
	runFlooding(t, procs)
	if tr.Current() <= 0 {
		t.Fatalf("LSDB memory should be tracked: %s", tr.Snapshot())
	}
}
