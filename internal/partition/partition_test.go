package partition

import (
	"fmt"
	"testing"

	"s2/internal/topology"
)

// makeGraph builds a Graph directly from an edge list with uniform weights.
func makeGraph(n int, edges [][2]int, weights []int64) *topology.Graph {
	g := &topology.Graph{
		Index:       map[string]int{},
		EdgeWeights: map[[2]int]int64{},
	}
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("n%03d", i)
		g.Nodes = append(g.Nodes, name)
		g.Index[name] = i
	}
	g.Adj = make([][]int, n)
	g.NodeWeights = make([]int64, n)
	for i := range g.NodeWeights {
		if weights != nil {
			g.NodeWeights[i] = weights[i]
		} else {
			g.NodeWeights[i] = 1
		}
	}
	for _, e := range edges {
		i, j := e[0], e[1]
		g.Adj[i] = append(g.Adj[i], j)
		g.Adj[j] = append(g.Adj[j], i)
		if i > j {
			i, j = j, i
		}
		g.EdgeWeights[[2]int{i, j}] = 1
	}
	return g
}

// ring builds a cycle of n nodes.
func ring(n int) *topology.Graph {
	var edges [][2]int
	for i := 0; i < n; i++ {
		edges = append(edges, [2]int{i, (i + 1) % n})
	}
	return makeGraph(n, edges, nil)
}

// twoClusters builds two dense cliques joined by a single bridge edge — the
// canonical case where min-cut partitioning must find the bridge.
func twoClusters(size int) *topology.Graph {
	var edges [][2]int
	for c := 0; c < 2; c++ {
		base := c * size
		for i := 0; i < size; i++ {
			for j := i + 1; j < size; j++ {
				edges = append(edges, [2]int{base + i, base + j})
			}
		}
	}
	edges = append(edges, [2]int{0, size})
	return makeGraph(2*size, edges, nil)
}

func TestParseScheme(t *testing.T) {
	for _, s := range []string{"metis", "random", "expert", "imbalanced", "commheavy"} {
		if _, err := ParseScheme(s); err != nil {
			t.Errorf("ParseScheme(%q): %v", s, err)
		}
	}
	if _, err := ParseScheme("nope"); err == nil {
		t.Error("unknown scheme should fail")
	}
}

func TestPartitionValidation(t *testing.T) {
	g := ring(8)
	if _, err := Partition(g, 0, Metis, 1); err == nil {
		t.Error("parts=0 should fail")
	}
	if _, err := Partition(&topology.Graph{}, 2, Metis, 1); err == nil {
		t.Error("empty graph should fail")
	}
	// More parts than nodes clamps.
	a, err := Partition(ring(3), 8, Random, 1)
	if err != nil || a.Parts != 3 {
		t.Errorf("clamping: %v %v", a, err)
	}
	if _, err := Partition(g, 2, Scheme("bogus"), 1); err == nil {
		t.Error("bogus scheme should fail")
	}
}

func TestAllSchemesCoverAllNodes(t *testing.T) {
	g := twoClusters(8)
	for _, scheme := range []Scheme{Metis, Random, Expert, Imbalanced, CommHeavy} {
		a, err := Partition(g, 4, scheme, 7)
		if err != nil {
			t.Fatalf("%s: %v", scheme, err)
		}
		if len(a.Of) != 16 {
			t.Errorf("%s: assigned %d of 16 nodes", scheme, len(a.Of))
		}
		for dev, p := range a.Of {
			if p < 0 || p >= a.Parts {
				t.Errorf("%s: %s assigned out-of-range part %d", scheme, dev, p)
			}
		}
		total := 0
		for p := 0; p < a.Parts; p++ {
			total += len(a.Segment(p))
		}
		if total != 16 {
			t.Errorf("%s: segments cover %d nodes", scheme, total)
		}
	}
}

func TestMetisFindsBridgeCut(t *testing.T) {
	g := twoClusters(10)
	a, err := Partition(g, 2, Metis, 3)
	if err != nil {
		t.Fatal(err)
	}
	if cut := a.EdgeCut(g); cut != 1 {
		t.Errorf("metis cut = %d, want the single bridge edge", cut)
	}
	if b := a.Balance(g); b > 1.05 {
		t.Errorf("metis balance = %v", b)
	}
}

func TestMetisBalancesWeightedNodes(t *testing.T) {
	// One node is 10× heavier; balance should still hold within
	// tolerance on a path graph.
	weights := make([]int64, 20)
	for i := range weights {
		weights[i] = 1
	}
	weights[0] = 10
	var edges [][2]int
	for i := 0; i < 19; i++ {
		edges = append(edges, [2]int{i, i + 1})
	}
	g := makeGraph(20, edges, weights)
	a, err := Partition(g, 2, Metis, 5)
	if err != nil {
		t.Fatal(err)
	}
	if b := a.Balance(g); b > 1.35 {
		t.Errorf("weighted balance = %v", b)
	}
}

func TestRandomIsBalancedByCount(t *testing.T) {
	a, err := Partition(ring(100), 4, Random, 11)
	if err != nil {
		t.Fatal(err)
	}
	for p, c := range a.Counts() {
		if c != 25 {
			t.Errorf("part %d has %d nodes, want 25", p, c)
		}
	}
	// Deterministic under the same seed.
	b, _ := Partition(ring(100), 4, Random, 11)
	for dev := range a.Of {
		if a.Of[dev] != b.Of[dev] {
			t.Fatal("same seed must reproduce the same assignment")
		}
	}
}

func TestImbalancedIsImbalanced(t *testing.T) {
	g := ring(100)
	a, err := Partition(g, 4, Imbalanced, 1)
	if err != nil {
		t.Fatal(err)
	}
	if c := a.Counts()[0]; c != 75 {
		t.Errorf("heavy part = %d, want 75", c)
	}
	if b := a.Balance(g); b < 2.5 {
		t.Errorf("imbalanced balance = %v, should be far from 1", b)
	}
}

func TestCommHeavyMaximizesCut(t *testing.T) {
	g := ring(32)
	heavy, _ := Partition(g, 2, CommHeavy, 1)
	met, _ := Partition(g, 2, Metis, 1)
	if heavy.EdgeCut(g) <= met.EdgeCut(g) {
		t.Errorf("commheavy cut %d should exceed metis cut %d",
			heavy.EdgeCut(g), met.EdgeCut(g))
	}
}

func TestExpertFatTreePodLocality(t *testing.T) {
	// Build FatTree-named nodes: 4 pods × (2 agg + 2 edge) + 4 cores.
	g := &topology.Graph{Index: map[string]int{}, EdgeWeights: map[[2]int]int64{}}
	for c := 0; c < 4; c++ {
		g.Nodes = append(g.Nodes, fmt.Sprintf("core-%d", c))
	}
	for p := 0; p < 4; p++ {
		for i := 0; i < 2; i++ {
			g.Nodes = append(g.Nodes, fmt.Sprintf("agg-%d-%d", p, i))
			g.Nodes = append(g.Nodes, fmt.Sprintf("edge-%d-%d", p, i))
		}
	}
	for i, n := range g.Nodes {
		g.Index[n] = i
	}
	g.Adj = make([][]int, len(g.Nodes))
	g.NodeWeights = make([]int64, len(g.Nodes))
	for i := range g.NodeWeights {
		g.NodeWeights[i] = 1
	}
	a, err := Partition(g, 2, Expert, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Same-pod agg/edge nodes must share a part.
	for p := 0; p < 4; p++ {
		want := a.Of[fmt.Sprintf("agg-%d-0", p)]
		for _, name := range []string{
			fmt.Sprintf("agg-%d-1", p),
			fmt.Sprintf("edge-%d-0", p),
			fmt.Sprintf("edge-%d-1", p),
		} {
			if a.Of[name] != want {
				t.Errorf("pod %d split: %s in %d, want %d", p, name, a.Of[name], want)
			}
		}
	}
	// Cores spread across parts.
	coreParts := map[int]bool{}
	for c := 0; c < 4; c++ {
		coreParts[a.Of[fmt.Sprintf("core-%d", c)]] = true
	}
	if len(coreParts) != 2 {
		t.Errorf("cores should spread over both parts: %v", coreParts)
	}
}

func TestExpertGenericChunks(t *testing.T) {
	a, err := Partition(ring(10), 2, Expert, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Name-sorted contiguous: n000..n004 → 0, n005..n009 → 1.
	if a.Of["n000"] != 0 || a.Of["n009"] != 1 {
		t.Errorf("chunking: %v", a.Of)
	}
}

func TestEstimateFatTreeLoad(t *testing.T) {
	load := EstimateFatTreeLoad(4)
	if load("core-0") != 32 || load("agg-1-0") != 32 {
		t.Errorf("core/agg load = %d/%d, want 32 (k³/2)", load("core-0"), load("agg-1-0"))
	}
	if load("edge-0-1") != 16 {
		t.Errorf("edge load = %d, want 16 (k³/4)", load("edge-0-1"))
	}
	if load("spine-rack-7") != 1 {
		t.Error("non-FatTree names get uniform load")
	}
}

func TestSinglePart(t *testing.T) {
	g := twoClusters(5)
	for _, scheme := range []Scheme{Metis, Random, Expert, Imbalanced, CommHeavy} {
		a, err := Partition(g, 1, scheme, 1)
		if err != nil {
			t.Fatalf("%s: %v", scheme, err)
		}
		if a.EdgeCut(g) != 0 {
			t.Errorf("%s: single part must have zero cut", scheme)
		}
	}
}

func TestMetisLargerGraph(t *testing.T) {
	// A 4-cluster graph: metis with 4 parts should cut few edges and
	// balance well.
	var edges [][2]int
	const cs = 12
	for c := 0; c < 4; c++ {
		base := c * cs
		for i := 0; i < cs; i++ {
			for j := i + 1; j < cs; j++ {
				if (i+j)%3 == 0 { // sparse-ish clusters
					edges = append(edges, [2]int{base + i, base + j})
				}
			}
		}
	}
	// Ring of bridges between clusters.
	for c := 0; c < 4; c++ {
		edges = append(edges, [2]int{c * cs, ((c + 1) % 4) * cs})
	}
	g := makeGraph(4*cs, edges, nil)
	a, err := Partition(g, 4, Metis, 9)
	if err != nil {
		t.Fatal(err)
	}
	if b := a.Balance(g); b > 1.2 {
		t.Errorf("balance = %v", b)
	}
	rnd, _ := Partition(g, 4, Random, 9)
	if a.EdgeCut(g) >= rnd.EdgeCut(g) {
		t.Errorf("metis cut %d should beat random cut %d", a.EdgeCut(g), rnd.EdgeCut(g))
	}
}
