// Package partition splits the network model into per-worker segments
// (§4.1). The primary goal is balancing estimated workload across workers;
// minimizing inter-worker communication is secondary, matching the paper's
// observation that S2's performance depends mostly on load balance (§5.6).
//
// The "metis" scheme is a from-scratch multilevel graph partitioner in the
// style of METIS: heavy-edge-matching coarsening, greedy balanced initial
// partitioning, and boundary Kernighan–Lin refinement. The other schemes
// ("random", "expert", and the two adversarial extremes "imbalanced" and
// "commheavy") reproduce the comparisons of Figure 7.
package partition

import (
	"fmt"
	"math/rand"
	"regexp"
	"sort"
	"strconv"

	"s2/internal/topology"
)

// Scheme selects a partitioning strategy.
type Scheme string

const (
	// Metis is the multilevel balanced min-cut partitioner (default).
	Metis Scheme = "metis"
	// Random shuffles switches evenly into segments.
	Random Scheme = "random"
	// Expert uses topology-aware heuristics: pod locality for FatTrees,
	// name-sorted contiguous chunks otherwise (§5.6).
	Expert Scheme = "expert"
	// Imbalanced puts 3/4 of all switches in segment 0 — the paper's
	// load-imbalance extreme.
	Imbalanced Scheme = "imbalanced"
	// CommHeavy maximizes inter-worker communication by separating
	// adjacent switches — the paper's communication extreme.
	CommHeavy Scheme = "commheavy"
)

// ParseScheme validates a scheme name.
func ParseScheme(s string) (Scheme, error) {
	switch Scheme(s) {
	case Metis, Random, Expert, Imbalanced, CommHeavy:
		return Scheme(s), nil
	}
	return "", fmt.Errorf("partition: unknown scheme %q", s)
}

// Assignment maps every device to a worker segment in [0, Parts).
type Assignment struct {
	Parts int
	Of    map[string]int
}

// Segment returns the device names assigned to part, sorted.
func (a *Assignment) Segment(part int) []string {
	var out []string
	for dev, p := range a.Of {
		if p == part {
			out = append(out, dev)
		}
	}
	sort.Strings(out)
	return out
}

// Counts returns the number of devices per part.
func (a *Assignment) Counts() []int {
	counts := make([]int, a.Parts)
	for _, p := range a.Of {
		counts[p]++
	}
	return counts
}

// EdgeCut returns the total weight of edges crossing parts.
func (a *Assignment) EdgeCut(g *topology.Graph) int64 {
	var cut int64
	for key, w := range g.EdgeWeights {
		if a.Of[g.Nodes[key[0]]] != a.Of[g.Nodes[key[1]]] {
			cut += w
		}
	}
	return cut
}

// Balance returns maxPartWeight / idealPartWeight (1.0 = perfect).
func (a *Assignment) Balance(g *topology.Graph) float64 {
	weights := make([]int64, a.Parts)
	for i, name := range g.Nodes {
		weights[a.Of[name]] += g.NodeWeights[i]
	}
	var max int64
	for _, w := range weights {
		if w > max {
			max = w
		}
	}
	ideal := float64(g.TotalNodeWeight()) / float64(a.Parts)
	if ideal == 0 {
		return 1
	}
	return float64(max) / ideal
}

// Partition assigns the graph's nodes to parts using the given scheme. The
// seed makes randomized schemes reproducible.
func Partition(g *topology.Graph, parts int, scheme Scheme, seed int64) (*Assignment, error) {
	if parts < 1 {
		return nil, fmt.Errorf("partition: parts must be >= 1, got %d", parts)
	}
	if len(g.Nodes) == 0 {
		return nil, fmt.Errorf("partition: empty graph")
	}
	if parts > len(g.Nodes) {
		parts = len(g.Nodes)
	}
	var of []int
	switch scheme {
	case Random:
		of = randomParts(g, parts, seed)
	case Expert:
		of = expertParts(g, parts)
	case Imbalanced:
		of = imbalancedParts(g, parts, seed)
	case CommHeavy:
		of = commHeavyParts(g, parts)
	case Metis, "":
		of = metisParts(g, parts, seed)
	default:
		return nil, fmt.Errorf("partition: unknown scheme %q", scheme)
	}
	a := &Assignment{Parts: parts, Of: make(map[string]int, len(g.Nodes))}
	for i, name := range g.Nodes {
		a.Of[name] = of[i]
	}
	return a, nil
}

func randomParts(g *topology.Graph, parts int, seed int64) []int {
	rng := rand.New(rand.NewSource(seed))
	order := rng.Perm(len(g.Nodes))
	of := make([]int, len(g.Nodes))
	for i, idx := range order {
		of[idx] = i % parts
	}
	return of
}

func imbalancedParts(g *topology.Graph, parts int, seed int64) []int {
	rng := rand.New(rand.NewSource(seed))
	order := rng.Perm(len(g.Nodes))
	of := make([]int, len(g.Nodes))
	heavy := len(g.Nodes) * 3 / 4
	for i, idx := range order {
		if i < heavy || parts == 1 {
			of[idx] = 0
		} else {
			of[idx] = 1 + (i-heavy)%(parts-1)
		}
	}
	return of
}

// fatTreeName matches the synthesized FatTree naming convention
// (core-N, agg-P-N, edge-P-N).
var fatTreeName = regexp.MustCompile(`^(core|agg|edge)-(\d+)(?:-(\d+))?$`)

func expertParts(g *topology.Graph, parts int) []int {
	of := make([]int, len(g.Nodes))
	// FatTree-aware: keep each pod's aggregation and edge switches
	// together; spread cores evenly.
	isFatTree := true
	for _, name := range g.Nodes {
		if !fatTreeName.MatchString(name) {
			isFatTree = false
			break
		}
	}
	if isFatTree {
		coreIdx := 0
		for i, name := range g.Nodes {
			m := fatTreeName.FindStringSubmatch(name)
			if m[1] == "core" {
				of[i] = coreIdx % parts
				coreIdx++
				continue
			}
			pod, _ := strconv.Atoi(m[2])
			of[i] = pod % parts
		}
		return of
	}
	// Generic expert: name-sorted contiguous chunks (the DCN heuristic —
	// similarly named switches tend to be topologically close, §5.6).
	sorted := append([]string(nil), g.Nodes...)
	sort.Strings(sorted)
	chunk := (len(sorted) + parts - 1) / parts
	pos := map[string]int{}
	for i, name := range sorted {
		pos[name] = i / chunk
	}
	for i, name := range g.Nodes {
		of[i] = pos[name]
	}
	return of
}

func commHeavyParts(g *topology.Graph, parts int) []int {
	// Assign each node (in BFS order) to the part where it has the
	// FEWEST... actually the MOST neighbors assigned elsewhere: pick the
	// part minimizing co-located neighbors, maximizing the cut.
	of := make([]int, len(g.Nodes))
	for i := range of {
		of[i] = -1
	}
	counts := make([]int, parts)
	order := bfsOrder(g)
	for _, i := range order {
		neighborIn := make([]int, parts)
		for _, j := range g.Adj[i] {
			if of[j] >= 0 {
				neighborIn[of[j]]++
			}
		}
		best, bestScore := 0, 1<<62
		for p := 0; p < parts; p++ {
			// Minimize co-located neighbors, then balance by count.
			score := neighborIn[p]*len(g.Nodes) + counts[p]
			if score < bestScore {
				best, bestScore = p, score
			}
		}
		of[i] = best
		counts[best]++
	}
	return of
}

func bfsOrder(g *topology.Graph) []int {
	visited := make([]bool, len(g.Nodes))
	var order []int
	for start := range g.Nodes {
		if visited[start] {
			continue
		}
		queue := []int{start}
		visited[start] = true
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			order = append(order, cur)
			for _, nb := range g.Adj[cur] {
				if !visited[nb] {
					visited[nb] = true
					queue = append(queue, nb)
				}
			}
		}
	}
	return order
}
