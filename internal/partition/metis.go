package partition

import (
	"math/rand"
	"sort"

	"s2/internal/topology"
)

// metisParts is the multilevel partitioner: coarsen by heavy-edge matching,
// partition the coarse graph greedily by weight, then project back and
// refine with boundary Kernighan–Lin moves under a balance constraint.
func metisParts(g *topology.Graph, parts int, seed int64) []int {
	rng := rand.New(rand.NewSource(seed))
	cg := newCoarseGraph(g)

	// Coarsening: halve until small enough or no progress.
	var levels []*coarseGraph
	target := parts * 8
	if target < 32 {
		target = 32
	}
	for len(cg.weights) > target {
		next := cg.coarsen(rng)
		if next == nil || len(next.weights) >= len(cg.weights) {
			break
		}
		levels = append(levels, cg)
		cg = next
	}

	// Initial partition of the coarsest graph: heaviest-first greedy onto
	// the lightest part.
	of := greedyInitial(cg, parts)
	refine(cg, of, parts, 8)

	// Uncoarsen: project the assignment down each level, refining.
	for i := len(levels) - 1; i >= 0; i-- {
		fine := levels[i]
		fineOf := make([]int, len(fine.weights))
		for v := range fineOf {
			fineOf[v] = of[fine.match[v]]
		}
		of = fineOf
		refine(fine, of, parts, 4)
	}
	return of
}

// coarseGraph is a weighted graph at one coarsening level. match maps this
// level's vertices to the next (coarser) level's vertices.
type coarseGraph struct {
	weights []int64
	adj     []map[int]int64 // vertex → neighbor → edge weight
	match   []int           // projection to the coarser level
}

func newCoarseGraph(g *topology.Graph) *coarseGraph {
	cg := &coarseGraph{
		weights: append([]int64(nil), g.NodeWeights...),
		adj:     make([]map[int]int64, len(g.Nodes)),
	}
	for i := range cg.adj {
		cg.adj[i] = map[int]int64{}
	}
	for key, w := range g.EdgeWeights {
		cg.adj[key[0]][key[1]] += w
		cg.adj[key[1]][key[0]] += w
	}
	return cg
}

// coarsen performs one level of heavy-edge matching.
func (cg *coarseGraph) coarsen(rng *rand.Rand) *coarseGraph {
	n := len(cg.weights)
	matched := make([]int, n)
	for i := range matched {
		matched[i] = -1
	}
	order := rng.Perm(n)
	pairs := 0
	for _, v := range order {
		if matched[v] >= 0 {
			continue
		}
		// Heaviest unmatched neighbor.
		best, bestW := -1, int64(-1)
		for u, w := range cg.adj[v] {
			if matched[u] < 0 && u != v && (w > bestW || (w == bestW && u < best)) {
				best, bestW = u, w
			}
		}
		if best >= 0 {
			matched[v], matched[best] = best, v
			pairs++
		} else {
			matched[v] = v
		}
	}
	if pairs == 0 {
		return nil
	}

	// Build the coarser graph.
	cg.match = make([]int, n)
	coarseID := make([]int, n)
	for i := range coarseID {
		coarseID[i] = -1
	}
	next := &coarseGraph{}
	for v := 0; v < n; v++ {
		if coarseID[v] >= 0 {
			continue
		}
		id := len(next.weights)
		coarseID[v] = id
		w := cg.weights[v]
		if m := matched[v]; m != v && coarseID[m] < 0 {
			coarseID[m] = id
			w += cg.weights[m]
		}
		next.weights = append(next.weights, w)
	}
	for v := 0; v < n; v++ {
		cg.match[v] = coarseID[v]
	}
	next.adj = make([]map[int]int64, len(next.weights))
	for i := range next.adj {
		next.adj[i] = map[int]int64{}
	}
	for v := 0; v < n; v++ {
		cv := coarseID[v]
		for u, w := range cg.adj[v] {
			cu := coarseID[u]
			if cu != cv {
				next.adj[cv][cu] += w
			}
		}
	}
	// Edges were added from both endpoints; halve.
	for v := range next.adj {
		for u := range next.adj[v] {
			if v < u {
				half := next.adj[v][u] / 2
				if half < 1 {
					half = 1
				}
				next.adj[v][u] = half
				next.adj[u][v] = half
			}
		}
	}
	return next
}

// greedyInitial assigns vertices (heaviest first) to the lightest part.
func greedyInitial(cg *coarseGraph, parts int) []int {
	n := len(cg.weights)
	of := make([]int, n)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		if cg.weights[order[a]] != cg.weights[order[b]] {
			return cg.weights[order[a]] > cg.weights[order[b]]
		}
		return order[a] < order[b]
	})
	partWeight := make([]int64, parts)
	for _, v := range order {
		// Prefer the lightest part; among near-equal parts, the one with
		// the strongest connection to already-placed neighbors.
		best, bestWeight := 0, partWeight[0]
		for p := 1; p < parts; p++ {
			if partWeight[p] < bestWeight {
				best, bestWeight = p, partWeight[p]
			}
		}
		of[v] = best
		partWeight[best] += cg.weights[v]
	}
	return of
}

// refine runs boundary KL passes: move vertices to reduce edge cut while
// keeping every part within the balance tolerance.
func refine(cg *coarseGraph, of []int, parts, passes int) {
	var total int64
	for _, w := range cg.weights {
		total += w
	}
	ideal := total / int64(parts)
	// Tight tolerance: balance is the primary objective (§4.1).
	maxPart := ideal + ideal/20 + 1

	partWeight := make([]int64, parts)
	for v, p := range of {
		partWeight[p] += cg.weights[v]
	}

	for pass := 0; pass < passes; pass++ {
		moved := false
		for v := range cg.weights {
			from := of[v]
			// Gain of moving v to part p: external edges to p minus
			// internal edges within from.
			gain := make([]int64, parts)
			for u, w := range cg.adj[v] {
				gain[of[u]] += w
			}
			bestP, bestGain := -1, int64(0)
			for p := 0; p < parts; p++ {
				if p == from {
					continue
				}
				d := gain[p] - gain[from]
				// Balance-first: allow a zero-gain move only when it
				// improves balance materially.
				balanceGain := partWeight[from] - (partWeight[p] + cg.weights[v])
				if partWeight[p]+cg.weights[v] > maxPart {
					continue
				}
				if d > bestGain || (d == bestGain && d > 0 && balanceGain > 0) {
					bestP, bestGain = p, d
				}
				// Pure balance move: overloaded source part.
				if partWeight[from] > maxPart && balanceGain > 0 && bestP < 0 {
					bestP = p
				}
			}
			if bestP >= 0 && bestP != from {
				of[v] = bestP
				partWeight[from] -= cg.weights[v]
				partWeight[bestP] += cg.weights[v]
				moved = true
			}
		}
		if !moved {
			break
		}
	}
}

// EstimateFatTreeLoad returns the paper's per-role route estimates for a
// k-pod FatTree: core and aggregation routers process ≈ k³/2 routes and
// edge routers ≈ k³/4 (§4.1). Returns 0 (uniform) for non-FatTree names.
func EstimateFatTreeLoad(k int) func(device string) int64 {
	coreLoad := int64(k) * int64(k) * int64(k) / 2
	edgeLoad := coreLoad / 2
	return func(device string) int64 {
		m := fatTreeName.FindStringSubmatch(device)
		if m == nil {
			return 1
		}
		switch m[1] {
		case "core", "agg":
			return coreLoad
		case "edge":
			return edgeLoad
		}
		return 1
	}
}
