package experiments

import (
	"strings"
	"testing"
)

// The figure runners are exercised at Quick() scale; assertions target the
// qualitative shapes the paper reports, not absolute numbers.

func TestFigure4Shapes(t *testing.T) {
	rows, err := Figure4(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	byKey := map[string]Row{}
	for _, r := range rows {
		byKey[r.System+"/"+r.Variant] = r
	}
	vanilla := byKey["batfish/no-shard"]
	if !vanilla.OOM {
		t.Errorf("vanilla batfish should OOM on the DCN (paper Fig. 4): %+v", vanilla)
	}
	sharded := byKey["batfish+shard/4-shards"]
	if !sharded.OK {
		t.Errorf("batfish+sharding should finish: %+v", sharded)
	}
	s2full := byKey["s2-4w/4-shards"]
	if !s2full.OK {
		t.Errorf("s2 should finish: %+v", s2full)
	}
	// S2's per-worker peak is far below the centralized peak.
	if s2full.PeakBytes >= sharded.PeakBytes {
		t.Errorf("s2 peak %d should be < batfish+shard peak %d", s2full.PeakBytes, sharded.PeakBytes)
	}
}

func TestFigure5Shapes(t *testing.T) {
	rows, err := Figure5(Quick())
	if err != nil {
		t.Fatal(err)
	}
	// Batfish fits the small size, OOMs beyond the calibration size...
	// at Quick scale {4,6} calibration is on k=6, so both sizes fit; the
	// series must exist for all three systems at each size.
	systems := map[string]int{}
	for _, r := range rows {
		systems[r.System]++
	}
	for _, sys := range []string{"batfish", "bonsai", "s2-1w", "s2-4w"} {
		if systems[sys] == 0 {
			t.Errorf("missing system %s in %v", sys, systems)
		}
	}
	// S2 with more workers never has a higher per-worker peak.
	peaks := map[string]map[string]int64{}
	for _, r := range rows {
		if peaks[r.Network] == nil {
			peaks[r.Network] = map[string]int64{}
		}
		peaks[r.Network][r.System] = r.PeakBytes
	}
	for net, m := range peaks {
		if m["s2-4w"] > 0 && m["s2-1w"] > 0 && m["s2-4w"] >= m["s2-1w"] {
			t.Errorf("%s: s2-4w peak %d should be < s2-1w peak %d", net, m["s2-4w"], m["s2-1w"])
		}
	}
}

func TestFigure6Shapes(t *testing.T) {
	rows, err := Figure6(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Peak memory decreases with workers.
	for i := 1; i < len(rows); i++ {
		if rows[i].PeakBytes >= rows[i-1].PeakBytes {
			t.Errorf("peak should fall with more workers: %v then %v",
				rows[i-1].PeakBytes, rows[i].PeakBytes)
		}
	}
	for _, r := range rows {
		if !r.OK {
			t.Errorf("row failed: %+v", r)
		}
	}
}

func TestFigure7Shapes(t *testing.T) {
	rows, err := Figure7(Quick())
	if err != nil {
		t.Fatal(err)
	}
	// 5 schemes × 2 networks; all verify successfully.
	if len(rows) != 10 {
		t.Fatalf("rows = %d", len(rows))
	}
	peaks := map[string]int64{}
	for _, r := range rows {
		if !r.OK {
			t.Errorf("scheme %s on %s failed: %s", r.Variant, r.Network, r.Err)
		}
		if r.Network == "FatTree4" {
			peaks[r.Variant] = r.PeakBytes
		}
	}
	// The imbalanced extreme has the worst peak (its heavy worker holds
	// 3/4 of the switches).
	for _, scheme := range []string{"random", "expert", "metis"} {
		if peaks["imbalanced"] <= peaks[scheme] {
			t.Errorf("imbalanced peak %d should exceed %s peak %d",
				peaks["imbalanced"], scheme, peaks[scheme])
		}
	}
}

func TestFigure8Shapes(t *testing.T) {
	rows, err := Figure8(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Variant == "no-shard" || r.OK {
			continue
		}
		t.Errorf("sharded run failed: %+v", r)
	}
	// Sharding lowers the peak at every size.
	byNet := map[string]map[string]Row{}
	for _, r := range rows {
		if byNet[r.Network] == nil {
			byNet[r.Network] = map[string]Row{}
		}
		byNet[r.Network][r.Variant] = r
	}
	for net, m := range byNet {
		noShard, shard := m["no-shard"], m["4-shards"]
		if noShard.OK && shard.OK && shard.PeakBytes >= noShard.PeakBytes {
			t.Errorf("%s: sharding should lower peak (%d vs %d)", net, shard.PeakBytes, noShard.PeakBytes)
		}
	}
}

func TestFigure9Shapes(t *testing.T) {
	rows, err := Figure9(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Monotone peak decrease as shards increase; identical route counts.
	for i := 1; i < len(rows); i++ {
		if rows[i].PeakBytes > rows[i-1].PeakBytes {
			t.Errorf("peak should not rise with more shards: %v → %v",
				rows[i-1].PeakBytes, rows[i].PeakBytes)
		}
		if rows[i].Routes != rows[0].Routes {
			t.Errorf("shard count must not change results: %d vs %d routes",
				rows[i].Routes, rows[0].Routes)
		}
	}
}

func TestFigure10Shapes(t *testing.T) {
	rows, err := Figure10(Quick())
	if err != nil {
		t.Fatal(err)
	}
	// 2 sizes × 2 systems × 2 query types.
	if len(rows) != 8 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if !r.OK {
			t.Errorf("row failed: %+v", r)
		}
		if r.DPCompute == 0 {
			t.Errorf("phase split missing for %s/%s/%s", r.System, r.Network, r.Variant)
		}
	}
}

func TestFormat(t *testing.T) {
	rows := []Row{{
		Figure: "fig5", System: "s2-4w", Network: "FatTree6", Variant: "x",
		Switches: 45, OK: true, PeakBytes: 2048,
	}, {
		Figure: "fig5", System: "batfish", Network: "FatTree6", OOM: true,
	}}
	out := Format(rows)
	for _, want := range []string{"fig5", "s2-4w", "2.0KiB", "OOM", "ok"} {
		if !strings.Contains(out, want) {
			t.Errorf("Format missing %q:\n%s", want, out)
		}
	}
	if Quick().FixedK != 4 {
		t.Error("Quick config")
	}
	if (Row{TimedOut: true}).Status() != "TIMEOUT" || (Row{}).Status() != "ERR" {
		t.Error("Status")
	}
}

func TestSortRows(t *testing.T) {
	rows := []Row{
		{Network: "b", System: "x"},
		{Network: "a", System: "y"},
		{Network: "a", System: "x", Variant: "2"},
		{Network: "a", System: "x", Variant: "1"},
	}
	sortRows(rows)
	if rows[0].Network != "a" || rows[0].Variant != "1" || rows[3].Network != "b" {
		t.Errorf("sort order: %+v", rows)
	}
}
