// Package experiments regenerates every figure in the paper's evaluation
// (§5, Figures 4–10) at laptop scale. Each runner returns tabular rows that
// cmd/s2bench prints and bench_test.go records, and EXPERIMENTS.md archives
// paper-vs-measured.
//
// Scale substitution: the paper runs FatTree40–FatTree90 (2 000–10 125
// switches) on five 64-core 500 GB servers; here FatTree sizes and memory
// budgets shrink proportionally (see Config). Per-worker memory budgets are
// calibrated per figure from an uncapped reference run, reproducing the
// paper's fixed 100 GB logical-server limit and its OOM crossovers. Time
// series report the critical path — the per-round maximum across workers —
// because wall clock on a single-CPU host serializes what a cluster runs
// in parallel.
package experiments

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"time"

	"s2/internal/baseline"
	"s2/internal/config"
	"s2/internal/core"
	"s2/internal/metrics"
	"s2/internal/obs"
	"s2/internal/partition"
	"s2/internal/synth"
)

// Config scales the experiments. The zero value gets Defaults applied.
type Config struct {
	// SweepKs are the FatTree pod counts for size sweeps (Figures 5, 8,
	// 10). Default {4, 6, 8}; pass larger values for longer runs.
	SweepKs []int
	// FixedK is the FatTree used by single-size figures (6, 7, 9).
	// Default 6.
	FixedK int
	// Workers is the worker-count ladder for Figure 6 (default
	// {1, 2, 4, 8, 12, 16}).
	Workers []int
	// MaxWorkers is the largest S2 deployment in comparative figures
	// (default 16, matching the paper).
	MaxWorkers int
	// Shards is the default prefix-shard count (paper: 20).
	Shards int
	// ShardSweep is Figure 9's ladder (default {1,5,10,15,20,25,30,40}).
	ShardSweep []int
	// DCN sizes Figure 4's real-DCN substitute.
	DCN synth.DCNOptions
	// Seed fixes all randomized choices.
	Seed int64
	// Procs is the per-worker goroutine pool for every S2 run (0 = all
	// CPUs, 1 = sequential; the s2bench -procs flag).
	Procs int
	// ProcsSweep is Figure 11's pool-size ladder (default {1, 2, 4, 8}).
	ProcsSweep []int
}

// Defaults fills unset fields.
func (c Config) Defaults() Config {
	if len(c.SweepKs) == 0 {
		c.SweepKs = []int{4, 6, 8}
	}
	if c.FixedK == 0 {
		c.FixedK = 6
	}
	if len(c.Workers) == 0 {
		c.Workers = []int{1, 2, 4, 8, 12, 16}
	}
	if c.MaxWorkers == 0 {
		c.MaxWorkers = 16
	}
	if c.Shards == 0 {
		c.Shards = 20
	}
	if len(c.ShardSweep) == 0 {
		c.ShardSweep = []int{1, 5, 10, 15, 20, 25, 30, 40}
	}
	if len(c.ProcsSweep) == 0 {
		c.ProcsSweep = []int{1, 2, 4, 8}
	}
	if c.DCN.Clusters == 0 {
		c.DCN = synth.DCNOptions{
			Clusters: 3, TORsPerCluster: 6, FabricWidth: 5, CoreWidth: 4,
			DeepClusters: true, WithAggregation: true, VLANsPerTOR: 6,
		}
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Quick returns a configuration small enough for unit tests and smoke
// benches.
func Quick() Config {
	return Config{
		SweepKs:    []int{4, 6},
		FixedK:     4,
		Workers:    []int{1, 2, 4},
		MaxWorkers: 4,
		Shards:     4,
		ShardSweep: []int{1, 2, 4, 8},
		DCN: synth.DCNOptions{
			Clusters: 2, TORsPerCluster: 4, FabricWidth: 4, CoreWidth: 3,
			DeepClusters: true, WithAggregation: true, VLANsPerTOR: 8,
		},
		Seed:       1,
		ProcsSweep: []int{1, 2},
	}.Defaults()
}

// Row is one measured configuration (one point/bar of a figure).
type Row struct {
	Figure  string
	System  string // "batfish", "batfish+shard", "bonsai", "s2-4w", ...
	Network string // "FatTree6", "DCN", ...
	Variant string // extra dimension: scheme, shard count, query type

	Switches int
	Routes   int

	OK       bool
	OOM      bool
	TimedOut bool
	Err      string

	// Times are critical-path (simulated parallel) durations.
	CPTime    time.Duration
	DPCompute time.Duration
	DPForward time.Duration
	Total     time.Duration
	// WallTime is the real elapsed time of the whole run — the number the
	// multi-core speedup figures compare, since critical-path durations
	// already simulate cluster parallelism.
	WallTime time.Duration `json:",omitempty"`

	// PeakBytes is the highest per-worker modelled peak.
	PeakBytes int64

	// Telemetry is the run's metrics snapshot (RPC counts and latencies,
	// convergence iterations, routes exchanged, modelled memory) keyed by
	// Prometheus series name. S2 rows only; surfaced by s2bench -json.
	Telemetry map[string]float64 `json:",omitempty"`
}

// Status renders the row's outcome.
func (r Row) Status() string {
	switch {
	case r.OOM:
		return "OOM"
	case r.TimedOut:
		return "TIMEOUT"
	case !r.OK:
		return "ERR"
	}
	return "ok"
}

// Format renders rows as an aligned table.
func Format(rows []Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %-16s %-12s %-14s %9s %9s %11s %11s %11s %11s %10s %s\n",
		"figure", "system", "network", "variant", "switches", "routes",
		"cp", "dp-compute", "dp-forward", "total", "peak", "status")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s %-16s %-12s %-14s %9d %9d %11s %11s %11s %11s %10s %s\n",
			r.Figure, r.System, r.Network, r.Variant, r.Switches, r.Routes,
			fmtDur(r.CPTime), fmtDur(r.DPCompute), fmtDur(r.DPForward), fmtDur(r.Total),
			metrics.FormatBytes(r.PeakBytes), r.Status())
	}
	return b.String()
}

func fmtDur(d time.Duration) string {
	if d == 0 {
		return "-"
	}
	return d.Round(time.Microsecond).String()
}

// fatTreeSnap synthesizes and parses a FatTree, returning texts too.
func fatTreeSnap(k int) (*config.Snapshot, map[string]string, error) {
	texts, err := synth.FatTree(synth.FatTreeOptions{K: k})
	if err != nil {
		return nil, nil, err
	}
	snap, err := parse(texts)
	return snap, texts, err
}

func dcnSnap(opts synth.DCNOptions) (*config.Snapshot, map[string]string, error) {
	texts, err := synth.DCN(opts)
	if err != nil {
		return nil, nil, err
	}
	snap, err := parse(texts)
	return snap, texts, err
}

func parse(texts map[string]string) (*config.Snapshot, error) {
	keyed := make(map[string]string, len(texts))
	for name, text := range texts {
		keyed[name+".cfg"] = text
	}
	return config.ParseTexts(keyed)
}

// logger receives structured logs from every controller the experiment
// runners build (nil = off). Process-wide because the runners construct
// controllers at many sites; the s2bench -log-level flag sets it once.
var logger *obs.Logger

// SetLogger routes controller/worker structured logs from all experiment
// runs to l. Call before running figures; nil disables.
func SetLogger(l *obs.Logger) { logger = l }

// s2Run executes the full S2 pipeline and measures it.
type s2Params struct {
	workers int
	shards  int
	scheme  partition.Scheme
	budget  int64
	loadOf  func(string) int64
	seed    int64
	procs   int  // per-worker pool size (0 = all CPUs)
	noBatch bool // disable cross-worker pull batching
	noWire  bool // disable the shared-substrate wire codec
	gcWipe  bool // revert BDD GC to the seed collector (A/B baseline)
}

// resolvedProcs mirrors the controller's Parallelism default so telemetry
// records the pool size actually used.
func (p s2Params) resolvedProcs() int {
	if p.procs > 0 {
		return p.procs
	}
	return runtime.NumCPU()
}

// recordPoolTelemetry stamps the run's pool and batching knobs into the
// telemetry map next to the metrics snapshot (s2bench -json rows).
func recordPoolTelemetry(t map[string]float64, p s2Params) {
	t["s2_pool_procs"] = float64(p.resolvedProcs())
	if p.noBatch {
		t["s2_batch_pulls_enabled"] = 0
	} else {
		t["s2_batch_pulls_enabled"] = 1
	}
	if p.noWire {
		t["s2_wire_dedup_enabled"] = 0
	} else {
		t["s2_wire_dedup_enabled"] = 1
	}
	if p.gcWipe {
		t["s2_gc_relocation_enabled"] = 0
	} else {
		t["s2_gc_relocation_enabled"] = 1
	}
}

// recordGCTelemetry stamps fleet-wide GC pause percentiles (aggregated
// over every worker's "total" pause series) into the telemetry map — the
// numbers BENCH_pr8.json compares between the relocating collector and
// the -gc-wipe seed baseline.
func recordGCTelemetry(t map[string]float64, reg *obs.Registry) {
	t["s2_bdd_gc_pause_p50_seconds"] = reg.HistogramQuantile(core.MetricBDDGCPause, 0.50, "phase", "total")
	t["s2_bdd_gc_pause_p99_seconds"] = reg.HistogramQuantile(core.MetricBDDGCPause, 0.99, "phase", "total")
	t["s2_bdd_gc_mark_p99_seconds"] = reg.HistogramQuantile(core.MetricBDDGCPause, 0.99, "phase", "mark")
}

func runS2(texts map[string]string, p s2Params) (row Row) {
	row = Row{System: fmt.Sprintf("s2-%dw", p.workers)}
	snap, err := parse(texts)
	if err != nil {
		row.Err = err.Error()
		return row
	}
	row.Switches = len(snap.Devices)
	reg := obs.NewRegistry()
	ctrl, err := core.NewController(snap, texts, core.Options{
		Workers:      p.workers,
		Scheme:       p.scheme,
		Shards:       p.shards,
		Seed:         p.seed,
		MemoryBudget: p.budget,
		LoadOf:       p.loadOf,
		Sequential:   true,
		Metrics:      reg,
		Logger:       logger,

		Parallelism:       p.procs,
		DisableBatchPulls: p.noBatch,
		DisableWireDedup:  p.noWire,
		GCWipe:            p.gcWipe,
	})
	if err != nil {
		row.Err = err.Error()
		return row
	}
	start := time.Now()
	defer func() {
		row.WallTime = time.Since(start)
		row.Telemetry = reg.Snapshot()
		recordPoolTelemetry(row.Telemetry, p)
		recordGCTelemetry(row.Telemetry, reg)
	}()
	if err := ctrl.RunControlPlane(); err != nil {
		return finishErr(row, err)
	}
	if _, err := ctrl.ComputeDataPlane(); err != nil {
		return finishErr(row, err)
	}
	res, err := ctrl.CheckAllPairs()
	if err != nil {
		return finishErr(row, err)
	}
	row.OK = len(res.Unreached) == 0 && len(res.Violations) == 0
	if !row.OK {
		row.Err = fmt.Sprintf("unreached=%d violations=%d", len(res.Unreached), len(res.Violations))
	}
	crit := ctrl.CriticalPath()
	row.CPTime = crit["cp"]
	row.DPCompute = crit["dp-compute"]
	row.DPForward = crit["dp-forward"]
	row.Total = ctrl.CriticalTotal()
	stats, err := ctrl.Stats()
	if err == nil {
		row.PeakBytes = core.MaxPeakBytes(stats)
	}
	return row
}

// runS2CP runs only the control plane (for CP-focused figures).
func runS2CP(texts map[string]string, p s2Params) (row Row) {
	row = Row{System: fmt.Sprintf("s2-%dw", p.workers)}
	snap, err := parse(texts)
	if err != nil {
		row.Err = err.Error()
		return row
	}
	row.Switches = len(snap.Devices)
	reg := obs.NewRegistry()
	ctrl, err := core.NewController(snap, texts, core.Options{
		Workers:      p.workers,
		Scheme:       p.scheme,
		Shards:       p.shards,
		Seed:         p.seed,
		MemoryBudget: p.budget,
		LoadOf:       p.loadOf,
		KeepRIBs:     true,
		Sequential:   true,
		Metrics:      reg,
		Logger:       logger,

		Parallelism:       p.procs,
		DisableBatchPulls: p.noBatch,
		DisableWireDedup:  p.noWire,
		GCWipe:            p.gcWipe,
	})
	if err != nil {
		row.Err = err.Error()
		return row
	}
	start := time.Now()
	defer func() {
		row.WallTime = time.Since(start)
		row.Telemetry = reg.Snapshot()
		recordPoolTelemetry(row.Telemetry, p)
		recordGCTelemetry(row.Telemetry, reg)
	}()
	if err := ctrl.RunControlPlane(); err != nil {
		return finishErr(row, err)
	}
	row.OK = true
	ribs, err := ctrl.CollectRIBs()
	if err == nil {
		for _, rib := range ribs {
			row.Routes += rib.RouteCount()
		}
	}
	crit := ctrl.CriticalPath()
	row.CPTime = crit["cp"]
	row.Total = ctrl.CriticalTotal()
	stats, err := ctrl.Stats()
	if err == nil {
		row.PeakBytes = core.MaxPeakBytes(stats)
	}
	return row
}

func finishErr(row Row, err error) Row {
	row.Err = err.Error()
	if errors.Is(err, metrics.ErrOutOfMemory) {
		row.OOM = true
	}
	if strings.Contains(err.Error(), "did not converge") || strings.Contains(err.Error(), "timed out") {
		row.TimedOut = true
	}
	return row
}

// runBatfish executes the centralized baseline.
func runBatfish(snap *config.Snapshot, shards int, budget int64, seed int64) Row {
	system := "batfish"
	if shards > 1 {
		system = "batfish+shard"
	}
	row := Row{System: system, Switches: len(snap.Devices)}
	bf, err := baseline.NewBatfish(snap, baseline.BatfishOptions{
		Shards: shards, Seed: seed, MemoryBudget: budget,
	})
	if err != nil {
		row.Err = err.Error()
		return row
	}
	if err := bf.RunControlPlane(); err != nil {
		return finishErr(row, err)
	}
	if _, err := bf.ComputeDataPlane(); err != nil {
		return finishErr(row, err)
	}
	res, err := bf.CheckAllPairs()
	if err != nil {
		return finishErr(row, err)
	}
	row.OK = len(res.Unreached) == 0 && len(res.Violations) == 0
	row.CPTime = bf.Timer().Get("cp-bgp") + bf.Timer().Get("cp-ospf")
	row.DPCompute = bf.Timer().Get("dp-compute")
	row.DPForward = bf.Timer().Get("dp-forward")
	row.Total = bf.Timer().Total()
	row.PeakBytes = bf.PeakBytes()
	return row
}

// batfishPeak measures the uncapped modelled peak for budget calibration.
func batfishPeak(snap *config.Snapshot) (int64, error) {
	bf, err := baseline.NewBatfish(snap, baseline.BatfishOptions{})
	if err != nil {
		return 0, err
	}
	if err := bf.RunControlPlane(); err != nil {
		return 0, err
	}
	if _, err := bf.ComputeDataPlane(); err != nil {
		return 0, err
	}
	if _, err := bf.CheckAllPairs(); err != nil {
		return 0, err
	}
	return bf.PeakBytes(), nil
}

// sortRows orders rows for stable output.
func sortRows(rows []Row) {
	sort.SliceStable(rows, func(i, j int) bool {
		if rows[i].Network != rows[j].Network {
			return rows[i].Network < rows[j].Network
		}
		if rows[i].System != rows[j].System {
			return rows[i].System < rows[j].System
		}
		return rows[i].Variant < rows[j].Variant
	})
}
