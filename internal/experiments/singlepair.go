package experiments

import (
	"fmt"

	"s2/internal/baseline"
	"s2/internal/core"
	"s2/internal/dataplane"
	"s2/internal/partition"
)

// Single-pair reachability (§5.8): edge-0-0 → edge-<lastpod>-0, the two
// edge switches in different pods the paper checks. Even this one pair
// triggers forwarding across all workers, because the core fans the packet
// out to every pod (Figure 11).

func runBatfishSinglePair(k int, cfg Config) (Row, error) {
	row := Row{System: "batfish"}
	snap, _, err := fatTreeSnap(k)
	if err != nil {
		return row, err
	}
	row.Switches = len(snap.Devices)
	bf, err := baseline.NewBatfish(snap, baseline.BatfishOptions{Seed: cfg.Seed})
	if err != nil {
		return row, err
	}
	if err := bf.RunControlPlane(); err != nil {
		return finishErr(row, err), nil
	}
	if _, err := bf.ComputeDataPlane(); err != nil {
		return finishErr(row, err), nil
	}
	src, dst := "edge-0-0", fmt.Sprintf("edge-%d-0", k-1)
	pfx := bf.OwnedPrefixes(dst)[0]
	col, err := bf.RunQuery(&dataplane.Query{
		Header:  &dataplane.HeaderSpace{DstPrefix: &pfx},
		Sources: []string{src},
		Dests:   []string{dst},
	}, false)
	if err != nil {
		return finishErr(row, err), nil
	}
	row.OK = col.Arrived(dst) != 0
	row.CPTime = bf.Timer().Get("cp-bgp")
	row.DPCompute = bf.Timer().Get("dp-compute")
	row.DPForward = bf.Timer().Get("dp-forward")
	row.Total = row.DPCompute + row.DPForward // §5.8 reports DPV time only
	row.PeakBytes = bf.PeakBytes()
	return row, nil
}

func runS2SinglePair(texts map[string]string, k int, cfg Config) (Row, error) {
	row := Row{System: fmt.Sprintf("s2-%dw", cfg.MaxWorkers)}
	snap, err := parse(texts)
	if err != nil {
		return row, err
	}
	row.Switches = len(snap.Devices)
	ctrl, err := core.NewController(snap, texts, core.Options{
		Workers:     cfg.MaxWorkers,
		Shards:      cfg.Shards,
		Seed:        cfg.Seed,
		LoadOf:      partition.EstimateFatTreeLoad(k),
		Sequential:  true,
		Parallelism: cfg.Procs,
		Logger:      logger,
	})
	if err != nil {
		return row, err
	}
	if err := ctrl.RunControlPlane(); err != nil {
		return finishErr(row, err), nil
	}
	if _, err := ctrl.ComputeDataPlane(); err != nil {
		return finishErr(row, err), nil
	}
	src, dst := "edge-0-0", fmt.Sprintf("edge-%d-0", k-1)
	pfx := ctrl.OwnedPrefixes(dst)[0]
	col, err := ctrl.RunQuery(&dataplane.Query{
		Header:  &dataplane.HeaderSpace{DstPrefix: &pfx},
		Sources: []string{src},
		Dests:   []string{dst},
	}, false)
	if err != nil {
		return finishErr(row, err), nil
	}
	row.OK = col.Arrived(dst) != 0
	crit := ctrl.CriticalPath()
	row.CPTime = crit["cp"]
	row.DPCompute = crit["dp-compute"]
	row.DPForward = crit["dp-forward"]
	row.Total = row.DPCompute + row.DPForward
	stats, err := ctrl.Stats()
	if err == nil {
		row.PeakBytes = core.MaxPeakBytes(stats)
	}
	return row, nil
}
