package experiments

import (
	"fmt"
	"time"

	"s2/internal/baseline"
	"s2/internal/partition"
	"s2/internal/synth"
)

// Figure4 reproduces §5.3 (real DCN): running time and peak memory for
// vanilla Batfish, Batfish with prefix sharding, S2 without sharding, and
// full S2. The per-logical-server budget is calibrated to 60% of vanilla
// Batfish's uncapped peak, so vanilla Batfish OOMs (as in the paper) while
// the sharded and distributed configurations fit.
func Figure4(cfg Config) ([]Row, error) {
	cfg = cfg.Defaults()
	snap, texts, err := dcnSnap(cfg.DCN)
	if err != nil {
		return nil, err
	}
	refPeak, err := batfishPeak(snap)
	if err != nil {
		return nil, fmt.Errorf("figure4 calibration: %w", err)
	}
	budget := refPeak * 60 / 100

	var rows []Row
	mk := func(r Row, variant string) {
		r.Figure, r.Network, r.Variant = "fig4", "DCN", variant
		r.Switches = len(snap.Devices)
		rows = append(rows, r)
	}
	snap2, _, _ := dcnSnap(cfg.DCN)
	mk(runBatfish(snap2, 1, budget, cfg.Seed), "no-shard")
	snap3, _, _ := dcnSnap(cfg.DCN)
	mk(runBatfish(snap3, cfg.Shards, budget, cfg.Seed), fmt.Sprintf("%d-shards", cfg.Shards))
	mk(runS2(texts, s2Params{workers: cfg.MaxWorkers, shards: 1, budget: budget, seed: cfg.Seed, procs: cfg.Procs}), "no-shard")
	mk(runS2(texts, s2Params{workers: cfg.MaxWorkers, shards: cfg.Shards, budget: budget, seed: cfg.Seed, procs: cfg.Procs}), fmt.Sprintf("%d-shards", cfg.Shards))
	return rows, nil
}

// Figure5 reproduces §5.4: verifying FatTrees of increasing size with
// Batfish, Bonsai, and S2 with 1, half, and max workers, under one
// calibrated logical-server budget. Batfish should OOM first; Bonsai runs
// further (memory-light, compute-bound); S2 scales furthest with more
// workers.
func Figure5(cfg Config) ([]Row, error) {
	cfg = cfg.Defaults()
	// Budget: the uncapped Batfish peak of the SECOND size (so the first
	// fits, later sizes OOM).
	calib := cfg.SweepKs[0]
	if len(cfg.SweepKs) > 1 {
		calib = cfg.SweepKs[1]
	}
	snapCal, _, err := fatTreeSnap(calib)
	if err != nil {
		return nil, err
	}
	refPeak, err := batfishPeak(snapCal)
	if err != nil {
		return nil, err
	}
	budget := refPeak * 110 / 100

	workerLadder := []int{1, cfg.MaxWorkers / 2, cfg.MaxWorkers}

	var rows []Row
	for _, k := range cfg.SweepKs {
		network := fmt.Sprintf("FatTree%d", k)
		snap, texts, err := fatTreeSnap(k)
		if err != nil {
			return nil, err
		}
		r := runBatfish(snap, 1, budget, cfg.Seed)
		r.Figure, r.Network = "fig5", network
		rows = append(rows, r)

		br := runBonsaiRow(k, budget, cfg)
		br.Figure, br.Network = "fig5", network
		rows = append(rows, br)

		for _, w := range workerLadder {
			if w < 1 {
				continue
			}
			sr := runS2(texts, s2Params{
				workers: w, shards: cfg.Shards, budget: budget,
				loadOf: partition.EstimateFatTreeLoad(k), seed: cfg.Seed, procs: cfg.Procs,
			})
			sr.Figure, sr.Network = "fig5", network
			rows = append(rows, sr)
		}
	}
	return rows, nil
}

func runBonsaiRow(k int, budget int64, cfg Config) Row {
	row := Row{System: "bonsai", Switches: synth.FatTreeSize(k)}
	snap, _, err := fatTreeSnap(k)
	if err != nil {
		row.Err = err.Error()
		return row
	}
	res, err := baseline.RunBonsai(snap, baseline.BonsaiOptions{Parallelism: cfg.MaxWorkers})
	if err != nil {
		return finishErr(row, err)
	}
	row.OK = len(res.Unreached) == 0
	// Simulated parallel time: per-prefix jobs are independent and spread
	// over the core budget.
	row.Total = (res.CompressTime + res.SimTime) / time.Duration(cfg.MaxWorkers)
	row.DPForward = res.SimTime / time.Duration(cfg.MaxWorkers)
	row.PeakBytes = res.PeakBytes
	if budget > 0 && res.PeakBytes > budget {
		row.OOM = true
		row.OK = false
	}
	return row
}

// Figure6 reproduces §5.5: scaling out one FatTree across 1..16 workers.
// Time and peak memory should fall steeply up to ~8 workers and flatten
// after.
func Figure6(cfg Config) ([]Row, error) {
	cfg = cfg.Defaults()
	_, texts, err := fatTreeSnap(cfg.FixedK)
	if err != nil {
		return nil, err
	}
	network := fmt.Sprintf("FatTree%d", cfg.FixedK)
	var rows []Row
	for _, w := range cfg.Workers {
		r := runS2(texts, s2Params{
			workers: w, shards: cfg.Shards,
			loadOf: partition.EstimateFatTreeLoad(cfg.FixedK), seed: cfg.Seed, procs: cfg.Procs,
		})
		r.Figure, r.Network, r.Variant = "fig6", network, fmt.Sprintf("%dw", w)
		rows = append(rows, r)
	}
	return rows, nil
}

// Figure7 reproduces §5.6: partition schemes (random/expert/metis plus the
// two adversarial extremes) on a FatTree and the DCN. The three reasonable
// schemes should differ only slightly; "imbalanced" should be clearly
// worse; "commheavy" slightly worse than random.
func Figure7(cfg Config) ([]Row, error) {
	cfg = cfg.Defaults()
	schemes := []partition.Scheme{partition.Random, partition.Expert, partition.Metis,
		partition.Imbalanced, partition.CommHeavy}

	var rows []Row
	_, ftTexts, err := fatTreeSnap(cfg.FixedK)
	if err != nil {
		return nil, err
	}
	_, dcnTexts, err := dcnSnap(cfg.DCN)
	if err != nil {
		return nil, err
	}
	for _, tc := range []struct {
		network string
		texts   map[string]string
		loadOf  func(string) int64
	}{
		{fmt.Sprintf("FatTree%d", cfg.FixedK), ftTexts, partition.EstimateFatTreeLoad(cfg.FixedK)},
		{"DCN", dcnTexts, nil},
	} {
		for _, scheme := range schemes {
			r := runS2(tc.texts, s2Params{
				workers: cfg.MaxWorkers / 2, shards: cfg.Shards,
				scheme: scheme, loadOf: tc.loadOf, seed: cfg.Seed, procs: cfg.Procs,
			})
			r.Figure, r.Network, r.Variant = "fig7", tc.network, string(scheme)
			rows = append(rows, r)
		}
	}
	return rows, nil
}

// Figure8 reproduces §5.7 (first half): simulating FatTrees of increasing
// size with and without prefix sharding under a per-worker budget. Small
// sizes pay a small sharding overhead or win slightly; at the top size the
// unsharded run OOMs and sharding becomes necessary.
func Figure8(cfg Config) ([]Row, error) {
	cfg = cfg.Defaults()
	// Budget calibrated from the middle size's UNsharded per-worker peak.
	mid := cfg.SweepKs[len(cfg.SweepKs)/2]
	_, texts, err := fatTreeSnap(mid)
	if err != nil {
		return nil, err
	}
	ref := runS2CP(texts, s2Params{workers: cfg.MaxWorkers / 2, shards: 1,
		loadOf: partition.EstimateFatTreeLoad(mid), seed: cfg.Seed, procs: cfg.Procs})
	if ref.Err != "" {
		return nil, fmt.Errorf("figure8 calibration: %s", ref.Err)
	}
	budget := ref.PeakBytes * 130 / 100

	var rows []Row
	for _, k := range cfg.SweepKs {
		network := fmt.Sprintf("FatTree%d", k)
		_, texts, err := fatTreeSnap(k)
		if err != nil {
			return nil, err
		}
		for _, shards := range []int{1, cfg.Shards} {
			variant := "no-shard"
			if shards > 1 {
				variant = fmt.Sprintf("%d-shards", shards)
			}
			r := runS2CP(texts, s2Params{
				workers: cfg.MaxWorkers / 2, shards: shards, budget: budget,
				loadOf: partition.EstimateFatTreeLoad(k), seed: cfg.Seed, procs: cfg.Procs,
			})
			r.Figure, r.Network, r.Variant = "fig8", network, variant
			rows = append(rows, r)
		}
	}
	return rows, nil
}

// Figure9 reproduces §5.7 (second half): one FatTree simulated with an
// increasing number of prefix shards. Peak memory falls monotonically;
// time first falls (memory pressure relieved) then rises (per-shard round
// overhead dominates).
func Figure9(cfg Config) ([]Row, error) {
	cfg = cfg.Defaults()
	_, texts, err := fatTreeSnap(cfg.FixedK)
	if err != nil {
		return nil, err
	}
	network := fmt.Sprintf("FatTree%d", cfg.FixedK)
	var rows []Row
	for _, shards := range cfg.ShardSweep {
		r := runS2CP(texts, s2Params{
			workers: cfg.MaxWorkers / 2, shards: shards,
			loadOf: partition.EstimateFatTreeLoad(cfg.FixedK), seed: cfg.Seed, procs: cfg.Procs,
		})
		r.Figure, r.Network, r.Variant = "fig9", network, fmt.Sprintf("%d-shards", shards)
		rows = append(rows, r)
	}
	return rows, nil
}

// Figure10 reproduces §5.8: all-pair vs single-pair reachability checking
// time on FatTrees, Batfish vs S2, split into the predicate-computation
// and packet-forwarding phases. S2's per-worker BDD engines should win
// both phases, more so at larger sizes.
func Figure10(cfg Config) ([]Row, error) {
	cfg = cfg.Defaults()
	var rows []Row
	for _, k := range cfg.SweepKs {
		network := fmt.Sprintf("FatTree%d", k)
		snap, texts, err := fatTreeSnap(k)
		if err != nil {
			return nil, err
		}

		// Batfish all-pair.
		bf := runBatfish(snap, 1, 0, cfg.Seed)
		bf.Figure, bf.Network, bf.Variant = "fig10", network, "all-pair"
		rows = append(rows, bf)
		// Batfish single-pair.
		sp, err := runBatfishSinglePair(k, cfg)
		if err != nil {
			return nil, err
		}
		sp.Figure, sp.Network, sp.Variant = "fig10", network, "single-pair"
		rows = append(rows, sp)

		// S2 all-pair.
		s2ap := runS2(texts, s2Params{workers: cfg.MaxWorkers, shards: cfg.Shards,
			loadOf: partition.EstimateFatTreeLoad(k), seed: cfg.Seed, procs: cfg.Procs})
		s2ap.Figure, s2ap.Network, s2ap.Variant = "fig10", network, "all-pair"
		rows = append(rows, s2ap)
		// S2 single-pair.
		s2sp, err := runS2SinglePair(texts, k, cfg)
		if err != nil {
			return nil, err
		}
		s2sp.Figure, s2sp.Network, s2sp.Variant = "fig10", network, "single-pair"
		rows = append(rows, s2sp)
	}
	return rows, nil
}

// Figure11 measures this implementation's multi-core hot path (not a paper
// figure): one FatTree, a fixed worker count, sweeping the per-worker pool
// size across three configurations — everything off ("pN"), pull batching
// on with per-packet wire encoding ("pN+batch-nowire"), and the full fast
// path with the shared-substrate wire codec ("pN+batch"). Wall clock
// should fall as the pool grows (bounded by the host's core count — see
// the README's note on reading these numbers), the batched runs should
// show fewer client RPCs (s2_rpc_calls_total in the row telemetry), and
// the wire-dedup runs should move several times fewer cross-worker
// data-plane bytes (s2_wire_packet_bytes_total) at equal results.
func Figure11(cfg Config) ([]Row, error) {
	cfg = cfg.Defaults()
	_, texts, err := fatTreeSnap(cfg.FixedK)
	if err != nil {
		return nil, err
	}
	network := fmt.Sprintf("FatTree%d", cfg.FixedK)
	workers := cfg.MaxWorkers / 2
	if workers < 2 {
		workers = 2
	}
	configs := []struct {
		suffix  string
		noBatch bool
		noWire  bool
		gcWipe  bool
	}{
		{suffix: "", noBatch: true, noWire: true},
		{suffix: "+batch-nowire", noBatch: false, noWire: true},
		{suffix: "+batch", noBatch: false, noWire: false},
		// The seed-collector baseline (sequential mark, op cache wiped per
		// collection) against the default relocating parallel collector:
		// compare s2_bdd_gc_pause_p50/p99_seconds between +batch and
		// +batch+gcwipe at equal (byte-identical) results.
		{suffix: "+batch+gcwipe", noBatch: false, noWire: false, gcWipe: true},
	}
	var rows []Row
	for _, cc := range configs {
		for _, procs := range cfg.ProcsSweep {
			r := runS2(texts, s2Params{
				workers: workers, shards: cfg.Shards,
				loadOf: partition.EstimateFatTreeLoad(cfg.FixedK), seed: cfg.Seed,
				procs: procs, noBatch: cc.noBatch, noWire: cc.noWire, gcWipe: cc.gcWipe,
			})
			r.Figure, r.Network, r.Variant = "fig11", network, fmt.Sprintf("p%d%s", procs, cc.suffix)
			rows = append(rows, r)
		}
	}
	return rows, nil
}
