// Command s2serve is the verification-as-a-service daemon: it boots the
// distributed pipeline once over a directory of device configurations,
// keeps the converged per-worker state resident, and serves an HTTP/JSON
// API for staging config deltas (POST /v1/configs), incremental
// re-verification (POST /v1/verify), warm queries (GET /v1/queries), and
// batched reachability queries (POST /v1/queries) answered through the
// coalescing, epoch-cached, intent-sliced query plane.
//
// Serving-mode telemetry rides along: per-request traces (GET
// /debug/traces), a delta audit journal (GET /v1/audit, -audit-log),
// structured logs (-log-level, -log-json), and RED metrics on /metrics.
//
// Usage:
//
//	s2serve -configs DIR [-addr :8642] [-workers N] [-shards M]
//	        [-workers-at host:port,...] [-procs N] [-seed S]
//	        [-recover] [-heartbeat-interval D] [-v]
//	        [-no-query-slicing] [-no-query-cache]
//	        [-log-level info] [-log-json] [-audit-log FILE]
//	        [-audit-size N] [-trace-store N] [-trace-slowest N]
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"s2"
	"s2/internal/obs"
	"s2/internal/serve"
)

func main() {
	var (
		configs    = flag.String("configs", "", "directory of *.cfg device configurations (required)")
		addr       = flag.String("addr", ":8642", "HTTP listen address for the API (and /metrics)")
		workers    = flag.Int("workers", 4, "number of in-process workers")
		workerAddr = flag.String("workers-at", "", "comma-separated sidecar addresses of remote workers (overrides -workers)")
		shards     = flag.Int("shards", 1, "prefix shard count (>1 enables sharding and incremental shard reuse)")
		scheme     = flag.String("scheme", "metis", "partition scheme: metis|random|expert|imbalanced|commheavy")
		seed       = flag.Int64("seed", 1, "seed for partitioning and shard shuffling")
		procs      = flag.Int("procs", 0, "per-worker goroutine pool for the simulation phases (0 = all CPUs)")
		rpcTimeout = flag.Duration("rpc-timeout", 0, "deadline per worker RPC attempt (0 = none)")
		retries    = flag.Int("retries", 0, "extra attempts for idempotent worker RPCs that fail transiently")
		heartbeat  = flag.Duration("heartbeat-interval", 0, "worker heartbeat interval (0 = off)")
		recoverOn  = flag.Bool("recover", false, "on worker death, re-partition onto survivors and re-verify")
		noSlicing  = flag.Bool("no-query-slicing", false, "involve every worker in each query pass instead of only the reachable slice")
		noQCache   = flag.Bool("no-query-cache", false, "disable the epoch-keyed query answer cache")
		verbose    = flag.Bool("v", false, "log the boot verification summary")

		logLevel  = flag.String("log-level", "info", "structured log level: debug|info|warn|error|off")
		logJSON   = flag.Bool("log-json", false, "emit structured logs as JSON lines (default: logfmt-style text)")
		auditLog  = flag.String("audit-log", "", "append every audit entry as a JSON line to this file")
		auditSize = flag.Int("audit-size", 1024, "audit entries kept in memory for /v1/audit")
		traceCap  = flag.Int("trace-store", 512, "per-request traces kept for /debug/traces (0 disables tracing)")
		traceSlow = flag.Int("trace-slowest", 16, "slowest traces always retained by eviction")

		history      = flag.Int("history", 512, "fleet health samples kept per series for /debug/dashboard (0 disables the history plane)")
		historyEvery = flag.Duration("history-interval", 0, "fleet sampling cadence (0 = heartbeat interval, else 5s)")
		profileCap   = flag.Int("profile-store", 32, "harvested worker pprof profiles kept for /debug/profiles (0 disables)")
		profileEvery = flag.Duration("profile-interval", 0, "periodic heap-profile harvest cadence (0 = 60s default, negative disables)")
		slowWorker   = flag.Int("slow-worker", -1, "inject a persistent per-call delay on this worker's phase RPCs (straggler experiment; -1 = off)")
		slowDelay    = flag.Duration("slow-worker-delay", 20*time.Millisecond, "per-call delay for -slow-worker")
	)
	flag.Parse()
	if *configs == "" {
		flag.Usage()
		os.Exit(2)
	}

	level, err := obs.ParseLogLevel(*logLevel)
	fatal(err)
	logger := obs.NewLogger(os.Stderr, level, *logJSON)

	network, err := s2.LoadDirectory(*configs)
	fatal(err)
	logger.Info("configs parsed", obs.FInt("devices", network.Size()), obs.FStr("dir", *configs))

	reg := obs.NewRegistry()
	var tracer *obs.Tracer
	if *traceCap > 0 {
		tracer = obs.NewTracer()
	}
	opts := s2.Options{
		Workers:             *workers,
		PartitionScheme:     *scheme,
		Shards:              *shards,
		Seed:                *seed,
		KeepRIBs:            true, // RIB queries are part of the API surface
		Parallelism:         *procs,
		RPCTimeout:          *rpcTimeout,
		RPCRetries:          *retries,
		HeartbeatInterval:   *heartbeat,
		Recover:             *recoverOn,
		DisableQuerySlicing: *noSlicing,
		DisableQueryCache:   *noQCache,
		Metrics:             reg,
		Tracer:              tracer,
		Logger:              logger,
		HistorySamples:      *history,
		HistoryInterval:     *historyEvery,
		ProfileCapacity:     *profileCap,
		ProfileInterval:     *profileEvery,
	}
	if *slowWorker >= 0 {
		opts.SlowWorker = *slowWorker
		opts.SlowWorkerDelay = *slowDelay
	}
	if *workerAddr != "" {
		opts.WorkerAddrs = strings.Split(*workerAddr, ",")
	}
	v, err := s2.NewVerifier(network, opts)
	fatal(err)
	defer v.Close()
	for _, warn := range v.TopologyWarnings() {
		logger.Warn("topology warning", obs.FStr("warning", warn))
	}

	var auditSink *os.File
	if *auditLog != "" {
		auditSink, err = os.OpenFile(*auditLog, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
		fatal(err)
		defer auditSink.Close()
	}
	var journal *serve.Journal
	if auditSink != nil {
		journal = serve.NewJournal(*auditSize, auditSink)
	} else {
		journal = serve.NewJournal(*auditSize, nil)
	}

	// Boot verification: converge once so every query after startup is warm.
	start := time.Now()
	warnings, err := v.ComputeDataPlane()
	fatal(err)
	report, err := v.CheckAllPairs()
	fatal(err)
	bootTook := time.Since(start)
	logger.Info("boot verification done",
		obs.FDur("took", bootTook.Round(time.Millisecond)),
		obs.FUint64("epoch", v.Epoch()),
		obs.FInt("shards", v.ShardCount()))
	if *verbose {
		for _, warn := range warnings {
			logger.Warn("FIB warning", obs.FStr("warning", warn))
		}
		fmt.Println(report)
	}

	// The boot run is the journal's first entry: every shard ran.
	bootShards := make([]int, v.ShardCount())
	for i := range bootShards {
		bootShards[i] = i
	}
	journal.Record(serve.AuditEntry{
		Epoch:       v.Epoch(),
		Time:        time.Now(),
		Class:       "boot",
		Mode:        "boot",
		DirtyShards: bootShards,
		DirtyCount:  v.ShardCount(),
		TotalShards: v.ShardCount(),
		Seconds:     bootTook.Seconds(),
		Outcome:     "ok",
	})

	// SIGQUIT dumps the flight recorder and keeps serving.
	flight := v.FlightRecorder()
	quit := make(chan os.Signal, 1)
	signal.Notify(quit, syscall.SIGQUIT)
	go func() {
		for range quit {
			fmt.Fprintln(os.Stderr, "s2serve: SIGQUIT — flight recorder dump:")
			flight.WriteTo(os.Stderr)
		}
	}()

	lis, err := net.Listen("tcp", *addr)
	fatal(err)
	srv := serve.New(v, serve.Options{
		Registry:         reg,
		Tracer:           tracer,
		TraceCapacity:    *traceCap,
		TraceKeepSlowest: *traceSlow,
		Logger:           logger,
		Audit:            journal,
	})
	fmt.Printf("s2serve: serving on http://%s\n", lis.Addr())

	// SIGINT/SIGTERM shut down cleanly (Close tears down workers).
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, syscall.SIGINT, syscall.SIGTERM)
	httpSrv := &http.Server{Handler: srv.Handler()}
	go func() {
		<-stop
		logger.Info("shutting down")
		httpSrv.Close()
	}()
	if err := httpSrv.Serve(lis); err != nil && err != http.ErrServerClosed {
		fatal(err)
	}
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "s2serve:", err)
		os.Exit(1)
	}
}
