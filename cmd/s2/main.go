// Command s2 verifies a directory of device configurations: it simulates
// the control plane across distributed workers, builds the data plane, and
// checks all-pair reachability plus loop- and blackhole-freedom.
//
// Usage:
//
//	s2 -configs DIR [-workers N] [-shards M] [-scheme metis|random|expert]
//	   [-workers-at host:port,host:port]  # remote workers via cmd/s2worker
//	   [-ribs] [-budget BYTES] [-spill DIR] [-v]
//	   [-trace out.json] [-obs-addr 127.0.0.1:9090]
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"s2"
	"s2/internal/obs"
)

func main() {
	var (
		configs    = flag.String("configs", "", "directory of *.cfg device configurations (required)")
		workers    = flag.Int("workers", 4, "number of in-process workers")
		workerAddr = flag.String("workers-at", "", "comma-separated sidecar addresses of remote workers (overrides -workers)")
		shards     = flag.Int("shards", 1, "prefix shard count (>1 enables sharding)")
		scheme     = flag.String("scheme", "metis", "partition scheme: metis|random|expert|imbalanced|commheavy")
		budget     = flag.Int64("budget", 0, "modelled per-worker memory budget in bytes (0 = unlimited)")
		spill      = flag.String("spill", "", "directory for spilling shard results between rounds")
		seed       = flag.Int64("seed", 1, "seed for partitioning and shard shuffling")
		showRIBs   = flag.Bool("ribs", false, "print every device's computed routes")
		checkDst   = flag.String("check-dst", "", "run a single-pair query: destination prefix (a.b.c.d/len)")
		checkFrom  = flag.String("check-from", "", "single-pair query: source node (with -check-dst)")
		checkTo    = flag.String("check-to", "", "single-pair query: destination node (with -check-dst)")
		checkVia   = flag.String("check-via", "", "single-pair query: required waypoint node (optional)")
		rpcTimeout = flag.Duration("rpc-timeout", 0, "deadline per worker RPC attempt (0 = none); also applied to worker peer calls")
		retries    = flag.Int("retries", 0, "extra attempts for idempotent worker RPCs that fail transiently")
		heartbeat  = flag.Duration("heartbeat-interval", 0, "ping workers at this interval; 3 consecutive misses declare a worker dead (0 = off)")
		recoverOn  = flag.Bool("recover", false, "on worker death, re-partition its segment onto survivors and re-execute")
		traceOut   = flag.String("trace", "", "write a Chrome trace_event JSON file of the run (open in chrome://tracing or ui.perfetto.dev)")
		obsAddr    = flag.String("obs-addr", "", "serve /metrics, /healthz, /progress, and /debug/pprof on this address")
		procs      = flag.Int("procs", 0, "per-worker goroutine pool for the simulation phases (0 = all CPUs, 1 = sequential)")
		noBatch    = flag.Bool("no-batch-pulls", false, "disable batching of cross-worker route pulls (one RPC per node-neighbor pair)")
		noWire     = flag.Bool("no-wire-dedup", false, "disable the shared-substrate wire codec for cross-worker packets (one serialized BDD per packet)")
		gcStress   = flag.Bool("gc-stress", false, "collect the BDD engine at every safe point the table grew (CI smoke knob; results are byte-identical)")
		gcWipe     = flag.Bool("gc-wipe", false, "revert BDD GC to the seed collector (sequential mark, op cache wiped per collection) for A/B benchmarks")
		showReport = flag.Bool("report", false, "print the per-worker × per-stage attribution table after the run")
		reportJSON = flag.String("report-json", "", "write the attribution report as JSON to this file (- for stdout)")
		flightLog  = flag.String("flight-log", "", "write the controller's flight-recorder events to this file at exit")
		history    = flag.Int("history", 512, "fleet health samples per series for /debug/dashboard (with -obs-addr; 0 disables)")
		profileCap = flag.Int("profile-store", 16, "harvested worker pprof profiles kept for /debug/profiles (with -obs-addr; 0 disables)")
		logLevel   = flag.String("log-level", "warn", "structured log level on stderr: debug|info|warn|error|off")
		logJSON    = flag.Bool("log-json", false, "emit structured logs as JSON lines (default: logfmt-style text)")
		verbose    = flag.Bool("v", false, "print phase timings and per-worker stats")
	)
	flag.Parse()
	if *configs == "" {
		flag.Usage()
		os.Exit(2)
	}

	// Structured logs go to stderr: stdout is the report surface and is
	// diffed by the comparison harnesses.
	level, err := obs.ParseLogLevel(*logLevel)
	fatal(err)
	logger := obs.NewLogger(os.Stderr, level, *logJSON)

	net, err := s2.LoadDirectory(*configs)
	fatal(err)
	fmt.Printf("parsed %d devices from %s\n", net.Size(), *configs)

	waypointBits := 0
	if *checkVia != "" {
		waypointBits = 1
	}
	opts := s2.Options{
		WaypointBits:      waypointBits,
		Workers:           *workers,
		PartitionScheme:   *scheme,
		Shards:            *shards,
		Seed:              *seed,
		MemoryBudgetBytes: *budget,
		SpillDir:          *spill,
		KeepRIBs:          *showRIBs,
		RPCTimeout:        *rpcTimeout,
		RPCRetries:        *retries,
		HeartbeatInterval: *heartbeat,
		Recover:           *recoverOn,
		Parallelism:       *procs,
		DisableBatchPulls: *noBatch,
		DisableWireDedup:  *noWire,
		GCStress:          *gcStress,
		GCWipe:            *gcWipe,
		Logger:            logger,
	}
	if *workerAddr != "" {
		opts.WorkerAddrs = strings.Split(*workerAddr, ",")
	}
	var tracer *obs.Tracer
	if *traceOut != "" {
		tracer = obs.NewTracer()
		opts.Tracer = tracer
	}
	var reg *obs.Registry
	if *obsAddr != "" {
		reg = obs.NewRegistry()
		opts.Metrics = reg
		opts.HistorySamples = *history
		opts.ProfileCapacity = *profileCap
	}
	v, err := s2.NewVerifier(net, opts)
	fatal(err)
	defer v.Close()

	// SIGQUIT dumps the flight recorder to stderr and keeps running — the
	// in-flight verification is not disturbed.
	flight := v.FlightRecorder()
	quit := make(chan os.Signal, 1)
	signal.Notify(quit, syscall.SIGQUIT)
	go func() {
		for range quit {
			fmt.Fprintln(os.Stderr, "s2: SIGQUIT — flight recorder dump:")
			flight.WriteTo(os.Stderr)
		}
	}()
	if *flightLog != "" {
		defer func() {
			f, err := os.Create(*flightLog)
			if err != nil {
				fmt.Fprintln(os.Stderr, "s2: flight-log:", err)
				return
			}
			flight.WriteTo(f)
			f.Close()
		}()
	}

	if *obsAddr != "" {
		isrv, err := obs.ServeIntrospection(*obsAddr, obs.ServerOptions{
			Registry: reg,
			Health: func() any {
				return map[string]any{"role": "controller", "faults": v.FaultStats()}
			},
			Progress: func() any { return v.Progress() },
			Flight:   flight,
			Dashboard: &obs.Dashboard{
				Health:  func() any { return v.FleetHealth() },
				History: v.History(),
			},
			Profiles: v.Profiles(),
			ProfilePull: func(worker int, kind string, seconds int) (*obs.Profile, error) {
				return v.PullWorkerProfile(worker, kind, seconds)
			},
		})
		fatal(err)
		defer isrv.Close()
		fmt.Printf("introspection on http://%s/metrics\n", isrv.Addr())
	}

	for _, w := range v.TopologyWarnings() {
		fmt.Printf("warning: %s\n", w)
	}

	start := time.Now()
	fatal(v.SimulateControlPlane())
	fmt.Printf("control plane converged in %v\n", time.Since(start).Round(time.Millisecond))

	warnings, err := v.ComputeDataPlane()
	fatal(err)
	for _, w := range warnings {
		fmt.Printf("warning: %s\n", w)
	}

	report, err := v.CheckAllPairs()
	fatal(err)
	fmt.Println(report)

	if *checkDst != "" {
		q := s2.Query{DstPrefix: *checkDst}
		if *checkFrom != "" {
			q.Sources = []string{*checkFrom}
		}
		if *checkTo != "" {
			q.Dests = []string{*checkTo}
		}
		if *checkVia != "" {
			q.Transits = []string{*checkVia}
		}
		rep, err := v.Check(q)
		fatal(err)
		fmt.Printf("\nquery dst=%s from=%v to=%v via=%q:\n", *checkDst, q.Sources, q.Dests, *checkVia)
		if rep.OK() {
			fmt.Printf("  OK; reached: %v\n", rep.ReachedDests)
		}
		for _, vio := range rep.Violations {
			fmt.Printf("  %s: %s (src=%s node=%s dst=%s)\n", vio.Kind, vio.Detail, vio.Source, vio.Node, vio.ExampleDst)
		}
	}

	if *showRIBs {
		ribs, err := v.RIBs()
		fatal(err)
		names := make([]string, 0, len(ribs))
		for n := range ribs {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Printf("\n%s:\n", n)
			for _, r := range ribs[n] {
				fmt.Printf("  %s\n", r)
			}
		}
	}

	if *verbose {
		for name, d := range v.PhaseDurations() {
			fmt.Printf("phase %-18s %v\n", name, d.Round(time.Millisecond))
		}
		stats, err := v.Stats()
		fatal(err)
		for _, st := range stats {
			fmt.Printf("worker %d: %d nodes, peak %d bytes, %d route pulls, %d packets in\n",
				st.Worker, st.Nodes, st.PeakBytes, st.RoutePulls, st.PacketsIn)
		}
		if fs := v.FaultStats(); len(fs) > 0 {
			names := make([]string, 0, len(fs))
			for n := range fs {
				names = append(names, n)
			}
			sort.Strings(names)
			for _, n := range names {
				fmt.Printf("fault %-18s %d\n", n, fs[n])
			}
		}
	}

	if *showReport || *reportJSON != "" {
		rep := v.AttributionReport()
		if *showReport {
			fmt.Printf("\nattribution report (%d spans):\n%s", rep.SpanCount, rep.String())
		}
		if *reportJSON != "" {
			data, err := rep.JSON()
			fatal(err)
			if *reportJSON == "-" {
				fmt.Println(string(data))
			} else {
				fatal(os.WriteFile(*reportJSON, append(data, '\n'), 0o644))
				fmt.Printf("attribution report written to %s\n", *reportJSON)
			}
		}
	}

	if *traceOut != "" {
		v.HarvestSpans()
		f, err := os.Create(*traceOut)
		fatal(err)
		fatal(tracer.WriteChromeTrace(f))
		fatal(f.Close())
		fmt.Printf("trace written to %s\n", *traceOut)
	}

	if !report.OK() {
		os.Exit(1)
	}
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "s2:", err)
		os.Exit(1)
	}
}
