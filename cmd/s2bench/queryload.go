package main

// The -queryload mode: an HTTP load generator for the concurrent query
// plane (PR 9). It boots the serving daemon over a fat-tree and measures
// the three effects the plane is judged on — epoch-cache speedup, batched
// passes running fewer symbolic injection phases than sequential
// submission, and served QPS with tail latency read off the daemon's own
// request histograms.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"time"

	"s2"
	"s2/internal/core"
	"s2/internal/obs"
	"s2/internal/serve"
	"s2/internal/synth"
)

// queryLoadConfig sizes the query-plane load experiment: a fat-tree
// served by the HTTP daemon under a mixed cold/warm/batched workload.
type queryLoadConfig struct {
	K       int   // fat-tree pods
	Workers int   // in-process workers
	Shards  int   // prefix shards
	Procs   int   // per-worker goroutine pool (0 = all CPUs)
	Clients int   // concurrent load-generator clients
	Repeats int   // requests per client in the throughput phase
	Seed    int64 // query sampling seed
}

func (c queryLoadConfig) defaults() queryLoadConfig {
	if c.K == 0 {
		c.K = 4
	}
	if c.Workers == 0 {
		c.Workers = 2
	}
	if c.Shards == 0 {
		c.Shards = 2
	}
	if c.Clients == 0 {
		c.Clients = 8
	}
	if c.Repeats == 0 {
		c.Repeats = 25
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// queryLoadResult is the -queryload JSON schema (BENCH_pr9.json): the
// cache-speedup and pass-count evidence plus the served throughput and
// the latency quantiles pulled off the s2_http_request_seconds and
// s2_verify_seconds histograms.
type queryLoadResult struct {
	Config queryLoadConfig

	DistinctQueries int `json:"distinct_queries"`

	// Cold one pass per query vs the same requests answered from the
	// epoch-keyed cache.
	ColdSeconds float64 `json:"cold_seconds"`
	WarmSeconds float64 `json:"warm_seconds"`
	WarmSpeedup float64 `json:"warm_speedup"`
	CacheHits   float64 `json:"cache_hits"`

	// Symbolic injection phases for the same distinct mix, submitted one
	// POST per query vs one batched POST.
	SequentialPasses float64 `json:"sequential_passes"`
	BatchedPasses    float64 `json:"batched_passes"`

	// Throughput phase: Clients concurrent generators, Repeats requests
	// each, sampling the warm mix.
	Requests      int     `json:"requests"`
	WallSeconds   float64 `json:"wall_seconds"`
	QPS           float64 `json:"qps"`
	HTTPp50       float64 `json:"http_p50_seconds"`
	HTTPp99       float64 `json:"http_p99_seconds"`
	VerifyP50     float64 `json:"verify_p50_seconds"`
	VerifyP99     float64 `json:"verify_p99_seconds"`
	MeanBatchSize float64 `json:"mean_batch_size"`
}

// queryLoadServer boots one fat-tree verifier behind the serving daemon
// with its own metrics registry.
func queryLoadServer(cfg queryLoadConfig, texts map[string]string) (*httptest.Server, *obs.Registry, *s2.Verifier, error) {
	reg := obs.NewRegistry()
	network, err := s2.LoadConfigs(texts)
	if err != nil {
		return nil, nil, nil, err
	}
	v, err := s2.NewVerifier(network, s2.Options{
		Workers:     cfg.Workers,
		Shards:      cfg.Shards,
		Seed:        cfg.Seed,
		Parallelism: cfg.Procs,
		KeepRIBs:    true,
		Metrics:     reg,
	})
	if err != nil {
		return nil, nil, nil, err
	}
	if _, err := v.ComputeDataPlane(); err != nil {
		v.Close()
		return nil, nil, nil, err
	}
	ts := httptest.NewServer(serve.New(v, serve.Options{Registry: reg}).Handler())
	return ts, reg, v, nil
}

// queryLoadMix builds the distinct batch-compatible query mix: one
// per-edge-prefix reachability query plus a restricted-source pair and a
// TCP/80 sweep, mirroring the operator workload the paper's §5 DPV
// experiments sample.
func queryLoadMix(texts map[string]string) []map[string]any {
	var edges []string
	for name := range texts {
		if strings.HasPrefix(name, "edge-") {
			edges = append(edges, name)
		}
	}
	// Deterministic order: map iteration is randomized.
	for i := 1; i < len(edges); i++ {
		for j := i; j > 0 && edges[j] < edges[j-1]; j-- {
			edges[j], edges[j-1] = edges[j-1], edges[j]
		}
	}
	var mix []map[string]any
	for i, e := range edges {
		if i >= 6 {
			break
		}
		mix = append(mix, map[string]any{"dests": []string{e}})
	}
	if len(edges) >= 2 {
		mix = append(mix, map[string]any{
			"sources": []string{edges[0]}, "dests": []string{edges[1]},
		})
	}
	mix = append(mix, map[string]any{"protocol": 6, "dst_port": 80})
	return mix
}

func postQueries(url string, queries []map[string]any) error {
	payload, err := json.Marshal(map[string]any{"queries": queries})
	if err != nil {
		return err
	}
	resp, err := http.Post(url+"/v1/queries", "application/json", bytes.NewReader(payload))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	var body map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("POST /v1/queries: status %d: %v", resp.StatusCode, body["error"])
	}
	return nil
}

// runQueryLoad measures the concurrent query plane end to end over HTTP:
//
//  1. cold sequential posts (one symbolic pass each) vs the same posts
//     warm (epoch-cache hits) — the cache-speedup evidence;
//  2. the same distinct mix on a fresh server as one batched POST — the
//     fewer-injection-phases evidence (passes counted by
//     s2_query_passes_total on each server's own registry);
//  3. a concurrent throughput phase whose QPS and p50/p99 come from the
//     serving daemon's own request histograms.
func runQueryLoad(cfg queryLoadConfig) (*queryLoadResult, error) {
	cfg = cfg.defaults()
	texts, err := synth.FatTree(synth.FatTreeOptions{K: cfg.K})
	if err != nil {
		return nil, err
	}
	mix := queryLoadMix(texts)
	res := &queryLoadResult{Config: cfg, DistinctQueries: len(mix)}

	// Server A: cold-vs-warm and throughput.
	ts, reg, v, err := queryLoadServer(cfg, texts)
	if err != nil {
		return nil, err
	}
	defer ts.Close()
	defer v.Close()

	passes0 := reg.Snapshot()[core.MetricQueryPasses]
	start := time.Now()
	for _, q := range mix {
		if err := postQueries(ts.URL, []map[string]any{q}); err != nil {
			return nil, err
		}
	}
	res.ColdSeconds = time.Since(start).Seconds()
	res.SequentialPasses = reg.Snapshot()[core.MetricQueryPasses] - passes0

	// Warm repeats: identical requests, answered from the cache. Average
	// over a few rounds so one scheduler hiccup does not dominate.
	const warmRounds = 3
	start = time.Now()
	for r := 0; r < warmRounds; r++ {
		for _, q := range mix {
			if err := postQueries(ts.URL, []map[string]any{q}); err != nil {
				return nil, err
			}
		}
	}
	res.WarmSeconds = time.Since(start).Seconds() / warmRounds
	if res.WarmSeconds > 0 {
		res.WarmSpeedup = res.ColdSeconds / res.WarmSeconds
	}
	res.CacheHits = reg.Snapshot()[core.MetricQueryCacheHits]

	// Server B: the same distinct mix as ONE batched submission on a cold
	// cache, so its pass counter isolates the batching effect.
	tsB, regB, vB, err := queryLoadServer(cfg, texts)
	if err != nil {
		return nil, err
	}
	defer tsB.Close()
	defer vB.Close()
	passesB := regB.Snapshot()[core.MetricQueryPasses]
	if err := postQueries(tsB.URL, mix); err != nil {
		return nil, err
	}
	res.BatchedPasses = regB.Snapshot()[core.MetricQueryPasses] - passesB

	// One staged no-op verify so the s2_verify_seconds histogram has a
	// sample to quote quantiles from.
	for name, text := range texts {
		payload, _ := json.Marshal(map[string]any{"set": map[string]string{name: text}})
		if _, err := http.Post(ts.URL+"/v1/configs", "application/json", bytes.NewReader(payload)); err != nil {
			return nil, err
		}
		if _, err := http.Post(ts.URL+"/v1/verify", "application/json", strings.NewReader("{}")); err != nil {
			return nil, err
		}
		break
	}

	// Throughput phase on server A: concurrent clients sampling the mix,
	// mostly warm solo posts with periodic batched posts.
	var wg sync.WaitGroup
	errs := make(chan error, cfg.Clients)
	total := 0
	start = time.Now()
	for c := 0; c < cfg.Clients; c++ {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(c)))
		wg.Add(1)
		total += cfg.Repeats
		go func(rng *rand.Rand) {
			defer wg.Done()
			for i := 0; i < cfg.Repeats; i++ {
				var batch []map[string]any
				if i%5 == 4 { // every fifth request is a full-mix batch
					batch = mix
				} else {
					batch = []map[string]any{mix[rng.Intn(len(mix))]}
				}
				if err := postQueries(ts.URL, batch); err != nil {
					select {
					case errs <- err:
					default:
					}
					return
				}
			}
		}(rng)
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		return nil, err
	}
	res.WallSeconds = time.Since(start).Seconds()
	res.Requests = total
	if res.WallSeconds > 0 {
		res.QPS = float64(total) / res.WallSeconds
	}

	res.HTTPp50 = reg.HistogramQuantile(serve.MetricHTTPLatency, 0.50, "path", "/v1/queries")
	res.HTTPp99 = reg.HistogramQuantile(serve.MetricHTTPLatency, 0.99, "path", "/v1/queries")
	res.VerifyP50 = reg.HistogramQuantile(serve.MetricVerifyLatency, 0.50)
	res.VerifyP99 = reg.HistogramQuantile(serve.MetricVerifyLatency, 0.99)
	snap := reg.Snapshot()
	if n := snap[core.MetricQueryBatchSize+"_count"]; n > 0 {
		res.MeanBatchSize = snap[core.MetricQueryBatchSize+"_sum"] / n
	}
	return res, nil
}

// formatQueryLoad renders the result in the s2bench table style.
func formatQueryLoad(r *queryLoadResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "fat-tree k=%d, %d workers, %d shards, %d distinct queries\n",
		r.Config.K, r.Config.Workers, r.Config.Shards, r.DistinctQueries)
	fmt.Fprintf(&b, "%-28s %12.1fms\n", "cold sequential (total)", r.ColdSeconds*1e3)
	fmt.Fprintf(&b, "%-28s %12.1fms  (%.0fx speedup, %.0f cache hits)\n",
		"warm repeat (total)", r.WarmSeconds*1e3, r.WarmSpeedup, r.CacheHits)
	fmt.Fprintf(&b, "%-28s %12.0f\n", "sequential passes", r.SequentialPasses)
	fmt.Fprintf(&b, "%-28s %12.0f\n", "batched passes", r.BatchedPasses)
	fmt.Fprintf(&b, "%-28s %12.0f reqs in %.2fs = %.0f qps\n",
		"throughput", float64(r.Requests), r.WallSeconds, r.QPS)
	fmt.Fprintf(&b, "%-28s %12.2fms p50, %.2fms p99\n",
		"http /v1/queries latency", r.HTTPp50*1e3, r.HTTPp99*1e3)
	fmt.Fprintf(&b, "%-28s %12.2fms p50, %.2fms p99\n",
		"verify latency", r.VerifyP50*1e3, r.VerifyP99*1e3)
	fmt.Fprintf(&b, "%-28s %12.1f\n", "mean submitted batch size", r.MeanBatchSize)
	return b.String()
}
