// Command s2bench regenerates the paper's evaluation figures (§5,
// Figures 4–10) plus Figure 11, this implementation's multi-core/batching
// sweep, and prints the measured series as tables.
//
// Usage:
//
//	s2bench                 # all figures at the default scale
//	s2bench -fig 5          # one figure
//	s2bench -quick          # small sizes (seconds instead of minutes)
//	s2bench -ks 4,6,8,10    # custom FatTree sweep
//	s2bench -procs 4        # per-worker goroutine pool for every S2 run
//	s2bench -json out.json  # machine-readable rows + telemetry snapshots
//	s2bench -queryload BENCH_pr9.json  # HTTP query-plane load experiment
//	s2bench -cpuprofile cpu.pprof -memprofile mem.pprof
//
// Times are critical-path durations (the slowest worker per round); see
// EXPERIMENTS.md for how the laptop-scale substitution maps to the paper.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"s2/internal/experiments"
	"s2/internal/obs"
)

var figures = map[int]struct {
	desc string
	run  func(experiments.Config) ([]experiments.Row, error)
}{
	4:  {"real-DCN-like: Batfish / Batfish+shard / S2±shard", experiments.Figure4},
	5:  {"FatTree sweep: Batfish vs Bonsai vs S2×workers", experiments.Figure5},
	6:  {"scale-out: one FatTree across 1..N workers", experiments.Figure6},
	7:  {"partition schemes: random/expert/metis + extremes", experiments.Figure7},
	8:  {"prefix sharding on/off across FatTree sizes", experiments.Figure8},
	9:  {"shard-count sweep on one FatTree", experiments.Figure9},
	10: {"DPV: all-pair vs single-pair, Batfish vs S2", experiments.Figure10},
	11: {"multi-core: pool-size sweep × batched pulls on/off", experiments.Figure11},
}

// printGCSummary prints a per-variant BDD GC pause digest for rows whose
// telemetry carries the collector's percentiles (runs with collections).
// For fig11 this is the before/after table the GC work is judged on: the
// `+gcwipe` variant is the seed collector, everything else the relocating
// parallel one.
func printGCSummary(rows []experiments.Row) {
	any := false
	for _, r := range rows {
		t := r.Telemetry
		if t == nil || t["s2_bdd_gc_pause_p50_seconds"] == 0 && t["s2_bdd_gc_pause_p99_seconds"] == 0 {
			continue
		}
		if !any {
			fmt.Printf("%-8s %-14s %12s %12s %12s %12s\n",
				"", "gc", "pause-p50", "pause-p99", "relocated", "gc-runs")
			any = true
		}
		variant := r.Variant
		if variant == "" {
			variant = r.System
		}
		// Counters are per-worker labeled series in the snapshot; sum them.
		sum := func(prefix string) float64 {
			var s float64
			for k, v := range t {
				if strings.HasPrefix(k, prefix) {
					s += v
				}
			}
			return s
		}
		fmt.Printf("%-8s %-14s %12s %12s %12.0f %12.0f\n",
			"", variant,
			(time.Duration(t["s2_bdd_gc_pause_p50_seconds"]*1e9) * time.Nanosecond).Round(time.Microsecond).String(),
			(time.Duration(t["s2_bdd_gc_pause_p99_seconds"]*1e9) * time.Nanosecond).Round(time.Microsecond).String(),
			sum("s2_bdd_cache_relocated_total"), sum("s2_bdd_gc_runs_total"))
	}
}

func main() {
	var (
		fig       = flag.Int("fig", 0, "figure number (4-11); 0 = all paper figures (4-10)")
		quick     = flag.Bool("quick", false, "small sizes for a fast smoke run")
		ks        = flag.String("ks", "", "comma-separated FatTree pod counts for sweeps (e.g. 4,6,8,10)")
		fixed     = flag.Int("k", 0, "FatTree size for single-size figures")
		shard     = flag.Int("shards", 0, "default prefix shard count")
		maxW      = flag.Int("maxworkers", 0, "largest S2 worker count")
		jsonOut   = flag.String("json", "", "also write rows (with per-run phase and RPC telemetry) as JSON to this file")
		procs     = flag.Int("procs", 0, "per-worker goroutine pool for S2 runs (0 = all CPUs, 1 = sequential)")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile of the whole run to this file")
		memProf   = flag.String("memprofile", "", "write a heap profile (after all figures) to this file")
		mutexProf = flag.String("mutexprofile", "", "write a mutex contention profile (after all figures) to this file")
		blockProf = flag.String("blockprofile", "", "write a goroutine blocking profile (after all figures) to this file")
		logLvl    = flag.String("log-level", "off", "structured controller/worker log level on stderr: debug|info|warn|error|off")
		logJSON   = flag.Bool("log-json", false, "emit structured logs as JSON lines (default: logfmt-style text)")

		queryLoad = flag.String("queryload", "", "run the HTTP query-plane load experiment instead of the figures and write its JSON to this file")
		clients   = flag.Int("clients", 0, "concurrent clients for -queryload (default 8)")
		repeats   = flag.Int("repeats", 0, "requests per client for -queryload (default 25)")
	)
	flag.Parse()

	level, err := obs.ParseLogLevel(*logLvl)
	if err != nil {
		fmt.Fprintln(os.Stderr, "s2bench:", err)
		os.Exit(2)
	}
	if level != obs.LevelOff {
		experiments.SetLogger(obs.NewLogger(os.Stderr, level, *logJSON))
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "s2bench:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "s2bench:", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	// Contention profiling is sampled at runtime and must be switched on
	// before the workload runs; rate 1 records every event (these are
	// benchmark runs — accuracy beats overhead).
	if *mutexProf != "" {
		runtime.SetMutexProfileFraction(1)
	}
	if *blockProf != "" {
		runtime.SetBlockProfileRate(1)
	}

	cfg := experiments.Config{}
	if *quick {
		cfg = experiments.Quick()
	}
	if *ks != "" {
		cfg.SweepKs = nil
		for _, s := range strings.Split(*ks, ",") {
			k, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil {
				fmt.Fprintln(os.Stderr, "s2bench: bad -ks:", err)
				os.Exit(2)
			}
			cfg.SweepKs = append(cfg.SweepKs, k)
		}
	}
	if *fixed > 0 {
		cfg.FixedK = *fixed
	}
	if *shard > 0 {
		cfg.Shards = *shard
	}
	if *maxW > 0 {
		cfg.MaxWorkers = *maxW
	}
	if *procs > 0 {
		cfg.Procs = *procs
	}
	cfg = cfg.Defaults()

	if *queryLoad != "" {
		qcfg := queryLoadConfig{
			K: *fixed, Procs: *procs, Clients: *clients, Repeats: *repeats,
		}
		if *shard > 0 {
			qcfg.Shards = *shard
		}
		if *maxW > 0 {
			qcfg.Workers = *maxW
		}
		fmt.Println("=== Query plane: HTTP load experiment ===")
		start := time.Now()
		res, err := runQueryLoad(qcfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "s2bench:", err)
			os.Exit(1)
		}
		fmt.Print(formatQueryLoad(res))
		fmt.Printf("(measured in %v)\n", time.Since(start).Round(time.Millisecond))
		b, err := json.MarshalIndent(res, "", " ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "s2bench:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*queryLoad, append(b, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "s2bench:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *queryLoad)
		return
	}

	var nums []int
	if *fig != 0 {
		if _, ok := figures[*fig]; !ok {
			fmt.Fprintf(os.Stderr, "s2bench: unknown figure %d (have 4-11)\n", *fig)
			os.Exit(2)
		}
		nums = []int{*fig}
	} else {
		nums = []int{4, 5, 6, 7, 8, 9, 10}
	}

	// figureResult is the -json schema: one entry per figure, each row
	// carrying its headline numbers plus the Telemetry snapshot (RPC
	// counts/latencies, convergence iterations, modelled memory) the
	// experiments runner records per S2 run.
	type figureResult struct {
		Figure     int
		Desc       string
		DurationMS int64
		Rows       []experiments.Row
	}
	var results []figureResult

	for _, n := range nums {
		f := figures[n]
		fmt.Printf("=== Figure %d: %s ===\n", n, f.desc)
		start := time.Now()
		rows, err := f.run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "s2bench: figure %d: %v\n", n, err)
			os.Exit(1)
		}
		fmt.Print(experiments.Format(rows))
		printGCSummary(rows)
		elapsed := time.Since(start)
		fmt.Printf("(figure %d measured in %v)\n\n", n, elapsed.Round(time.Millisecond))
		results = append(results, figureResult{
			Figure: n, Desc: f.desc, DurationMS: elapsed.Milliseconds(), Rows: rows,
		})
	}

	if *jsonOut != "" {
		b, err := json.MarshalIndent(results, "", " ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "s2bench:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*jsonOut, append(b, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "s2bench:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *jsonOut)
	}

	if *memProf != "" {
		f, err := os.Create(*memProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "s2bench:", err)
			os.Exit(1)
		}
		runtime.GC() // settle the heap so the profile shows retained memory
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "s2bench:", err)
			os.Exit(1)
		}
		f.Close()
		fmt.Printf("wrote %s\n", *memProf)
	}
	writeLookupProfile(*mutexProf, "mutex")
	writeLookupProfile(*blockProf, "block")
}

// writeLookupProfile dumps a named runtime/pprof profile ("mutex",
// "block") to path; no-op when path is empty.
func writeLookupProfile(path, name string) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "s2bench:", err)
		os.Exit(1)
	}
	if err := pprof.Lookup(name).WriteTo(f, 0); err != nil {
		fmt.Fprintln(os.Stderr, "s2bench:", err)
		os.Exit(1)
	}
	f.Close()
	fmt.Printf("wrote %s\n", path)
}
