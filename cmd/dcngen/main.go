// Command dcngen synthesizes the "real DCN"-like workload of the paper's
// §2.3 — multi-layer Clos clusters with per-layer ASNs, AS_PATH overwrite,
// route aggregation with community tagging, heterogeneous ECMP, and five
// vendor dialects — and writes the configurations as *.cfg files.
//
// Usage:
//
//	dcngen -clusters 4 -tors 8 -fabric 4 -core 4 -out configs/
package main

import (
	"flag"
	"fmt"
	"os"

	"s2/internal/config"
	"s2/internal/synth"
)

func main() {
	var (
		clusters = flag.Int("clusters", 2, "number of Clos clusters")
		tors     = flag.Int("tors", 4, "TOR switches per cluster")
		fabric   = flag.Int("fabric", 2, "fabric switches per intermediate layer")
		core     = flag.Int("core", 2, "DCN core switches")
		deep     = flag.Bool("deep", true, "make every second cluster 5 layers deep")
		agg      = flag.Bool("aggregate", true, "enable cluster-top route aggregation")
		vlans    = flag.Int("vlans", 1, "business /24s announced per TOR")
		out      = flag.String("out", "", "output directory (required)")
	)
	flag.Parse()
	if *out == "" {
		flag.Usage()
		os.Exit(2)
	}
	opts := synth.DCNOptions{
		Clusters:        *clusters,
		TORsPerCluster:  *tors,
		FabricWidth:     *fabric,
		CoreWidth:       *core,
		DeepClusters:    *deep,
		WithAggregation: *agg,
		VLANsPerTOR:     *vlans,
	}
	texts, err := synth.DCN(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dcngen:", err)
		os.Exit(1)
	}
	if err := config.WriteDirectory(*out, texts); err != nil {
		fmt.Fprintln(os.Stderr, "dcngen:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %d configs (%d switches) to %s\n", len(texts), synth.DCNSize(opts), *out)
}
