// Command s2worker runs one S2 worker as a standalone process serving the
// sidecar RPC protocol over TCP. Start several workers, then point the s2
// CLI (or the library's Options.WorkerAddrs) at their addresses:
//
//	s2worker -listen 127.0.0.1:7001 &
//	s2worker -listen 127.0.0.1:7002 &
//	s2 -configs DIR -workers-at 127.0.0.1:7001,127.0.0.1:7002
//
// The controller sends each worker its segment of the network during
// Setup; workers dial each other directly for shadow-node route pulls and
// symbolic packet deliveries.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"

	"s2/internal/core"
	"s2/internal/sidecar"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:0", "TCP address for the worker's sidecar")
	flag.Parse()

	lis, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, "s2worker:", err)
		os.Exit(1)
	}
	fmt.Printf("s2worker listening on %s\n", lis.Addr())
	if err := sidecar.Serve(core.NewWorker(), lis); err != nil {
		fmt.Fprintln(os.Stderr, "s2worker:", err)
		os.Exit(1)
	}
}
