// Command s2worker runs one S2 worker as a standalone process serving the
// sidecar RPC protocol over TCP. Start several workers, then point the s2
// CLI (or the library's Options.WorkerAddrs) at their addresses:
//
//	s2worker -listen 127.0.0.1:7001 &
//	s2worker -listen 127.0.0.1:7002 &
//	s2 -configs DIR -workers-at 127.0.0.1:7001,127.0.0.1:7002
//
// The controller sends each worker its segment of the network during
// Setup; workers dial each other directly for shadow-node route pulls and
// symbolic packet deliveries.
//
// On SIGINT/SIGTERM the worker drains: it stops accepting new RPCs,
// finishes the in-flight ones (up to -grace), and exits 0. The controller
// sees subsequent calls fail transiently and, with recovery enabled,
// re-partitions this worker's segment onto the survivors.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"s2/internal/core"
	"s2/internal/fault"
	"s2/internal/obs"
	"s2/internal/sidecar"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:0", "TCP address for the worker's sidecar")
	rpcTimeout := flag.Duration("rpc-timeout", 0, "deadline for this worker's peer-to-peer RPC attempts (0 = none; the controller's Setup overrides it)")
	retries := flag.Int("retries", 0, "extra attempts for idempotent peer RPCs that fail transiently")
	grace := flag.Duration("grace", 10*time.Second, "max time to finish in-flight RPCs on SIGINT/SIGTERM")
	procs := flag.Int("procs", 0, "default goroutine pool for the simulation phases when Setup doesn't set one (0 = all CPUs, 1 = sequential)")
	obsAddr := flag.String("obs-addr", "", "serve /metrics, /healthz, /progress, /debug/flightrecorder, /debug/dashboard, and /debug/pprof for this worker on this address")
	histSamples := flag.Int("history", 256, "metric samples per series for this worker's /debug/dashboard sparklines (with -obs-addr; 0 disables)")
	spanRing := flag.Int("span-ring", 16384, "capacity of the span export ring drained by the controller's PullSpans")
	flightLog := flag.String("flight-log", "", "also write flight-recorder dumps (SIGQUIT) to this file")
	logLevel := flag.String("log-level", "info", "structured log level: debug|info|warn|error|off")
	logJSON := flag.Bool("log-json", false, "emit structured logs as JSON lines (default: logfmt-style text)")
	flag.Parse()

	level, err := obs.ParseLogLevel(*logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "s2worker:", err)
		os.Exit(1)
	}
	logger := obs.NewLogger(os.Stderr, level, *logJSON)

	lis, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, "s2worker:", err)
		os.Exit(1)
	}
	w := core.NewWorker()
	w.SetLogger(logger)
	w.SetDefaultPolicy(fault.Policy{Timeout: *rpcTimeout, Retries: *retries})
	defProcs := *procs
	if defProcs <= 0 {
		defProcs = runtime.NumCPU()
	}
	w.SetDefaultParallelism(defProcs)
	srv := sidecar.NewServer(w)

	// Tracing is always on: spans land in a bounded export ring that costs
	// nothing unless a controller harvests it over PullSpans, and the flight
	// recorder keeps the last page of structured events for post-mortems.
	tracer := obs.NewTracer()
	tracer.SetExportLimit(*spanRing)
	var reg *obs.Registry
	if *obsAddr != "" {
		reg = obs.NewRegistry()
	}
	w.SetObservability(tracer, reg)

	if *obsAddr != "" {
		srv.SetRPCHook(sidecar.RPCHook(obs.RPCInstrument(reg, "server", nil)))
		bytesTotal := reg.Counter(obs.MetricRPCBytes,
			"Bytes moved over sidecar RPC connections.", "role", "dir")
		bytesTotal.SetFunc(func() float64 { return float64(srv.BytesRead()) }, "server", "in")
		bytesTotal.SetFunc(func() float64 { return float64(srv.BytesWritten()) }, "server", "out")
		obs.RegisterProcessVitals(reg)
		// Local history ring: the worker samples its own registry so its
		// /debug/dashboard sparklines work even without a controller
		// harvesting it.
		hist := obs.NewHistory(*histSamples)
		if hist != nil {
			stop := hist.Start(5*time.Second, func() map[string]float64 { return reg.Snapshot() })
			defer stop()
		}
		isrv, err := obs.ServeIntrospection(*obsAddr, obs.ServerOptions{
			Registry: reg,
			Health: func() any {
				return map[string]any{"role": "worker", "listen": lis.Addr().String()}
			},
			Progress: func() any {
				return map[string]any{
					"rpc_bytes_in":  srv.BytesRead(),
					"rpc_bytes_out": srv.BytesWritten(),
				}
			},
			Flight: w.FlightRecorder(),
			Dashboard: &obs.Dashboard{
				Health: func() any {
					return map[string]any{"role": "worker", "listen": lis.Addr().String()}
				},
				History: hist,
			},
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "s2worker:", err)
			os.Exit(1)
		}
		defer isrv.Close()
		fmt.Printf("s2worker introspection on http://%s/metrics\n", isrv.Addr())
	}

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		sig := <-sigs
		logger.Info("draining on signal", obs.FStr("signal", sig.String()), obs.FDur("grace", *grace))
		srv.Shutdown(*grace)
	}()

	// SIGQUIT is the post-mortem path: dump the flight recorder and exit
	// immediately without draining — the controller salvages what it can.
	quit := make(chan os.Signal, 1)
	signal.Notify(quit, syscall.SIGQUIT)
	go func() {
		<-quit
		fmt.Fprintln(os.Stderr, "s2worker: SIGQUIT — flight recorder dump:")
		w.FlightRecorder().WriteTo(os.Stderr)
		if *flightLog != "" {
			if f, err := os.Create(*flightLog); err == nil {
				w.FlightRecorder().WriteTo(f)
				f.Close()
			}
		}
		os.Exit(2)
	}()

	fmt.Printf("s2worker listening on %s\n", lis.Addr())
	if err := srv.Serve(lis); err != nil {
		fmt.Fprintln(os.Stderr, "s2worker:", err)
		os.Exit(1)
	}
	// Serve returns nil when the listener was closed by Shutdown: a clean,
	// drained exit.
}
