// Command fattreegen synthesizes a k-pod FatTree's device configurations
// (the ACORN-style workload of the paper's §5.2) and writes them as *.cfg
// files.
//
// Usage:
//
//	fattreegen -k 8 -out configs/ [-maxpaths 64] [-prefixes 1] [-acl]
package main

import (
	"flag"
	"fmt"
	"os"

	"s2/internal/config"
	"s2/internal/synth"
)

func main() {
	var (
		k        = flag.Int("k", 4, "pod count (even, >= 2); switch count is 5k²/4")
		out      = flag.String("out", "", "output directory (required)")
		maxPaths = flag.Int("maxpaths", 64, "ECMP maximum-paths on every switch")
		prefixes = flag.Int("prefixes", 1, "announced /24s per edge switch")
		acl      = flag.Bool("acl", false, "plant a deliberate ACL blackhole on edge 0")
	)
	flag.Parse()
	if *out == "" {
		flag.Usage()
		os.Exit(2)
	}
	texts, err := synth.FatTree(synth.FatTreeOptions{
		K: *k, MaxPaths: *maxPaths, PrefixesPerEdge: *prefixes, WithACL: *acl,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "fattreegen:", err)
		os.Exit(1)
	}
	if err := config.WriteDirectory(*out, texts); err != nil {
		fmt.Fprintln(os.Stderr, "fattreegen:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %d configs (FatTree%d, %d switches) to %s\n",
		len(texts), *k, synth.FatTreeSize(*k), *out)
}
