package s2

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func fatTree4(t *testing.T) *Network {
	t.Helper()
	net, err := SynthesizeFatTree(FatTreeSpec{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func TestPublicAPIEndToEnd(t *testing.T) {
	net := fatTree4(t)
	if net.Size() != 20 || len(net.Devices()) != 20 {
		t.Fatalf("size = %d", net.Size())
	}
	v, err := NewVerifier(net, Options{Workers: 4, Shards: 2, KeepRIBs: true})
	if err != nil {
		t.Fatal(err)
	}
	if w := v.TopologyWarnings(); len(w) != 0 {
		t.Fatalf("warnings: %v", w)
	}
	if err := v.SimulateControlPlane(); err != nil {
		t.Fatal(err)
	}
	warnings, err := v.ComputeDataPlane()
	if err != nil || len(warnings) != 0 {
		t.Fatalf("dp: %v %v", warnings, err)
	}
	rep, err := v.CheckAllPairs()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("report: %s", rep)
	}
	if !strings.Contains(rep.String(), "OK") {
		t.Errorf("String: %q", rep.String())
	}
	count, err := v.RouteCount()
	if err != nil || count == 0 {
		t.Fatalf("routes: %d %v", count, err)
	}
	ribs, err := v.RIBs()
	if err != nil || len(ribs) != 20 {
		t.Fatalf("ribs: %d %v", len(ribs), err)
	}
	stats, err := v.Stats()
	if err != nil || len(stats) != 4 {
		t.Fatalf("stats: %v %v", stats, err)
	}
	peak, err := v.PeakMemoryBytes()
	if err != nil || peak <= 0 {
		t.Fatalf("peak: %d %v", peak, err)
	}
	if len(v.PhaseDurations()) == 0 {
		t.Fatal("phases")
	}
}

func TestPublicAPIImplicitPipeline(t *testing.T) {
	// CheckAllPairs should run the earlier phases automatically.
	v, err := NewVerifier(fatTree4(t), Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := v.CheckAllPairs()
	if err != nil || !rep.OK() {
		t.Fatalf("implicit pipeline: %v %v", rep, err)
	}
}

func TestPublicQueryAPI(t *testing.T) {
	net, err := SynthesizeFatTree(FatTreeSpec{K: 4, WithACL: true})
	if err != nil {
		t.Fatal(err)
	}
	v, err := NewVerifier(net, Options{Workers: 4, WaypointBits: 2})
	if err != nil {
		t.Fatal(err)
	}
	// The ACL blackholes edge-0-0's prefix (10.128.0.0/24).
	rep, err := v.Check(Query{
		DstPrefix: "10.128.0.0/24",
		Sources:   []string{"edge-1-0"},
		Dests:     []string{"edge-0-0"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatal("ACL blackhole must be reported")
	}
	kinds := map[string]bool{}
	for _, vio := range rep.Violations {
		kinds[vio.Kind] = true
	}
	if !kinds["blackhole"] {
		t.Fatalf("violations = %+v", rep.Violations)
	}

	// A clean pair passes with reached dests recorded.
	rep2, err := v.Check(Query{
		DstPrefix: "10.128.64.0/24", // edge index 1's prefix
		Sources:   []string{"edge-0-0"},
		Dests:     []string{"edge-0-1"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep2.OK() || len(rep2.ReachedDests) == 0 {
		t.Fatalf("clean pair: %+v", rep2)
	}

	// Bad query inputs.
	if _, err := v.Check(Query{DstPrefix: "not-a-prefix"}); err == nil {
		t.Fatal("bad prefix must fail")
	}
	if _, err := v.Check(Query{Transits: []string{"a", "b", "c"}}); err == nil {
		t.Fatal("too many transits must fail")
	}
}

func TestLoadDirectoryRoundTrip(t *testing.T) {
	net := fatTree4(t)
	dir := t.TempDir()
	for name, text := range net.ConfigTexts() {
		if err := os.WriteFile(filepath.Join(dir, name+".cfg"), []byte(text), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	loaded, err := LoadDirectory(dir)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Size() != net.Size() {
		t.Fatalf("loaded %d devices, want %d", loaded.Size(), net.Size())
	}
	v, err := NewVerifier(loaded, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := v.CheckAllPairs()
	if err != nil || !rep.OK() {
		t.Fatalf("round-tripped network: %v %v", rep, err)
	}
}

func TestNewVerifierValidation(t *testing.T) {
	net := fatTree4(t)
	if _, err := NewVerifier(net, Options{PartitionScheme: "bogus"}); err == nil {
		t.Fatal("bad scheme must fail")
	}
	// Defaults: 1 worker, seed 1.
	v, err := NewVerifier(net, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := v.SimulateControlPlane(); err != nil {
		t.Fatal(err)
	}
}

func TestSynthesizeDCNPublic(t *testing.T) {
	net, err := SynthesizeDCN(DCNSpec{
		Clusters: 2, TORsPerCluster: 2, FabricWidth: 2, CoreWidth: 2,
		WithAggregation: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	v, err := NewVerifier(net, Options{Workers: 3, Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := v.CheckAllPairs()
	if err != nil || !rep.OK() {
		t.Fatalf("DCN: %v %v", rep, err)
	}
}

func TestFatTreeLoadEstimatorExported(t *testing.T) {
	load := FatTreeLoadEstimator(4)
	if load("core-0") != 32 || load("edge-0-0") != 16 {
		t.Fatal("estimator")
	}
	if FatTreeSize(8) != 80 {
		t.Fatal("FatTreeSize")
	}
}

func TestCheckBatchMatchesSequentialChecks(t *testing.T) {
	v, err := NewVerifier(fatTree4(t), Options{Workers: 2, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v.ComputeDataPlane(); err != nil {
		t.Fatal(err)
	}
	qs := []Query{
		{DstPrefix: "10.128.0.0/24", Dests: []string{"edge-0-0"}},
		{DstPrefix: "10.128.64.0/24", Sources: []string{"edge-0-0"}, Dests: []string{"edge-0-1"}},
		{Protocol: 6, DstPort: 80},
	}
	reps, err := v.CheckBatch(qs)
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != len(qs) {
		t.Fatalf("got %d reports for %d queries", len(reps), len(qs))
	}
	for i, q := range qs {
		solo, err := v.Check(q)
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		if reps[i].OK() != solo.OK() || len(reps[i].Violations) != len(solo.Violations) ||
			len(reps[i].ReachedDests) != len(solo.ReachedDests) {
			t.Errorf("query %d: batch report %+v differs from solo %+v", i, reps[i], solo)
		}
		if reps[i].Epoch != v.Epoch() {
			t.Errorf("query %d: epoch %d, want %d", i, reps[i].Epoch, v.Epoch())
		}
	}
	if batch, err := v.CheckBatch(nil); err != nil || batch != nil {
		t.Fatalf("empty batch: %v %v", batch, err)
	}
	if _, err := v.CheckBatch([]Query{{DstPrefix: "bogus"}}); err == nil {
		t.Fatal("bad query in a batch must fail")
	}
}

// TestConcurrentQueriesDuringApplyDelta races warm queries against config
// deltas: every answer must carry the epoch of a state that was current at
// some point during the call — never an epoch older than the one observed
// before the query was issued (a stale-cache answer), and never one newer
// than the state at return.
func TestConcurrentQueriesDuringApplyDelta(t *testing.T) {
	net := fatTree4(t)
	v, err := NewVerifier(net, Options{Workers: 2, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v.ComputeDataPlane(); err != nil {
		t.Fatal(err)
	}
	q := Query{DstPrefix: "10.128.64.0/24", Sources: []string{"edge-0-0"}, Dests: []string{"edge-0-1"}}

	stop := make(chan struct{})
	errs := make(chan error, 8)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				before := v.Epoch()
				rep, err := v.Check(q)
				if err != nil {
					errs <- err
					return
				}
				after := v.Epoch()
				if rep.Epoch < before || rep.Epoch > after {
					errs <- fmt.Errorf("stale answer: epoch %d outside [%d, %d]", rep.Epoch, before, after)
					return
				}
				if !rep.OK() {
					errs <- fmt.Errorf("clean pair failed at epoch %d: %+v", rep.Epoch, rep.Violations)
					return
				}
			}
		}()
	}

	dev := net.Devices()[0]
	text := v.ConfigText(dev)
	for i := 0; i < 3; i++ {
		if _, err := v.ApplyDelta(map[string]string{dev: text}, nil); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
