module s2

go 1.22
