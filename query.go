package s2

import (
	"fmt"

	"s2/internal/dataplane"
	"s2/internal/route"
)

// Query is the paper's 4-tuple (H, Vs, Vd, Vt) at the public surface
// (§4.4): a header space, source nodes, destination nodes, and transit
// (waypoint) nodes.
type Query struct {
	// DstPrefix restricts the destination addresses ("a.b.c.d/len");
	// empty means any destination.
	DstPrefix string
	// SrcPrefix restricts source addresses; empty means any.
	SrcPrefix string
	// Protocol restricts the IP protocol (0 = any; 6 = TCP, 17 = UDP).
	Protocol uint8
	// DstPort restricts the destination port (0 = any).
	DstPort uint16

	// Sources inject the packet; empty means every prefix-owning node.
	Sources []string
	// Dests are the nodes where arrival counts (empty: any delivery).
	Dests []string
	// Transits are waypoint nodes every delivered packet must traverse.
	// Requires Options.WaypointBits >= len(Transits).
	Transits []string
	// MaxHops is the loop-detection TTL (default 32).
	MaxHops int
}

func (q *Query) compile() (*dataplane.Query, error) {
	h := &dataplane.HeaderSpace{Proto: q.Protocol}
	if q.DstPrefix != "" {
		p, err := route.ParsePrefix(q.DstPrefix)
		if err != nil {
			return nil, fmt.Errorf("s2: bad DstPrefix: %w", err)
		}
		h.DstPrefix = &p
	}
	if q.SrcPrefix != "" {
		p, err := route.ParsePrefix(q.SrcPrefix)
		if err != nil {
			return nil, fmt.Errorf("s2: bad SrcPrefix: %w", err)
		}
		h.SrcPrefix = &p
	}
	if q.DstPort != 0 {
		h.DstPortLo, h.DstPortHi = q.DstPort, q.DstPort
	}
	return &dataplane.Query{
		Header:   h,
		Sources:  q.Sources,
		Dests:    q.Dests,
		Transits: q.Transits,
		MaxHops:  q.MaxHops,
	}, nil
}

// Report is the outcome of one Check call.
type Report struct {
	// ReachedDests lists destination nodes that received packets.
	ReachedDests []string
	// Violations found by the §4.4 checks: reachability, waypoint,
	// multipath consistency, loop- and blackhole-freedom.
	Violations []Violation
}

// OK reports whether the query found no violations.
func (r *Report) OK() bool { return len(r.Violations) == 0 }

// Check runs a property query across the workers and evaluates all five
// §4.4 property types against the outcome.
func (v *Verifier) Check(q Query) (*Report, error) {
	if !v.dpDone {
		if _, err := v.ComputeDataPlane(); err != nil {
			return nil, err
		}
	}
	dq, err := q.compile()
	if err != nil {
		return nil, err
	}
	col, err := v.ctrl.RunQuery(dq, false)
	if err != nil {
		return nil, err
	}
	vios, err := col.Report()
	if err != nil {
		return nil, err
	}
	rep := &Report{Violations: fromDP(vios)}
	for _, d := range v.net.Devices() {
		if col.Arrived(d) != 0 {
			rep.ReachedDests = append(rep.ReachedDests, d)
		}
	}
	return rep, nil
}
