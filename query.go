package s2

import (
	"fmt"

	"s2/internal/dataplane"
	"s2/internal/route"
)

// Query is the paper's 4-tuple (H, Vs, Vd, Vt) at the public surface
// (§4.4): a header space, source nodes, destination nodes, and transit
// (waypoint) nodes.
type Query struct {
	// DstPrefix restricts the destination addresses ("a.b.c.d/len");
	// empty means any destination.
	DstPrefix string
	// SrcPrefix restricts source addresses; empty means any.
	SrcPrefix string
	// Protocol restricts the IP protocol (0 = any; 6 = TCP, 17 = UDP).
	Protocol uint8
	// DstPort restricts the destination port (0 = any).
	DstPort uint16

	// Sources inject the packet; empty means every prefix-owning node.
	Sources []string
	// Dests are the nodes where arrival counts (empty: any delivery).
	Dests []string
	// Transits are waypoint nodes every delivered packet must traverse.
	// Requires Options.WaypointBits >= len(Transits).
	Transits []string
	// MaxHops is the loop-detection TTL (default 32).
	MaxHops int
}

func (q *Query) compile() (*dataplane.Query, error) {
	h := &dataplane.HeaderSpace{Proto: q.Protocol}
	if q.DstPrefix != "" {
		p, err := route.ParsePrefix(q.DstPrefix)
		if err != nil {
			return nil, fmt.Errorf("s2: bad DstPrefix: %w", err)
		}
		h.DstPrefix = &p
	}
	if q.SrcPrefix != "" {
		p, err := route.ParsePrefix(q.SrcPrefix)
		if err != nil {
			return nil, fmt.Errorf("s2: bad SrcPrefix: %w", err)
		}
		h.SrcPrefix = &p
	}
	if q.DstPort != 0 {
		h.DstPortLo, h.DstPortHi = q.DstPort, q.DstPort
	}
	return &dataplane.Query{
		Header:   h,
		Sources:  q.Sources,
		Dests:    q.Dests,
		Transits: q.Transits,
		MaxHops:  q.MaxHops,
	}, nil
}

// Report is the outcome of one Check call.
type Report struct {
	// ReachedDests lists destination nodes that received packets.
	ReachedDests []string
	// Violations found by the §4.4 checks: reachability, waypoint,
	// multipath consistency, loop- and blackhole-freedom.
	Violations []Violation
	// Epoch is the verified-state epoch the answer was computed against.
	Epoch uint64
}

// OK reports whether the query found no violations.
func (r *Report) OK() bool { return len(r.Violations) == 0 }

// Check runs a property query across the workers and evaluates all five
// §4.4 property types against the outcome. Answers go through the
// concurrent query plane: repeated queries against the same verified epoch
// are served from the outcome cache, and concurrent Check calls coalesce
// into shared symbolic passes — both byte-identical to a cold solo run.
func (v *Verifier) Check(q Query) (*Report, error) {
	if err := v.ensureDP(); err != nil {
		return nil, err
	}
	dq, err := q.compile()
	if err != nil {
		return nil, err
	}
	v.qmu.RLock()
	defer v.qmu.RUnlock()
	col, epoch, err := v.ctrl.SubmitQuery(dq, false)
	if err != nil {
		return nil, err
	}
	return v.buildReport(col, epoch)
}

// CheckBatch answers a set of queries in one submission: batch-compatible
// queries (same transit list and hop budget) share single symbolic passes
// instead of running one pass each, and duplicates collapse to one
// execution. Reports come back positionally.
func (v *Verifier) CheckBatch(qs []Query) ([]*Report, error) {
	if len(qs) == 0 {
		return nil, nil
	}
	if err := v.ensureDP(); err != nil {
		return nil, err
	}
	dqs := make([]*dataplane.Query, len(qs))
	for i := range qs {
		dq, err := qs[i].compile()
		if err != nil {
			return nil, fmt.Errorf("s2: query %d: %w", i, err)
		}
		dqs[i] = dq
	}
	v.qmu.RLock()
	defer v.qmu.RUnlock()
	cols, epochs, err := v.ctrl.SubmitQueryBatch(dqs, false)
	if err != nil {
		return nil, err
	}
	reports := make([]*Report, len(qs))
	for i, col := range cols {
		if reports[i], err = v.buildReport(col, epochs[i]); err != nil {
			return nil, err
		}
	}
	return reports, nil
}

// buildReport evaluates a collector into the public report form.
func (v *Verifier) buildReport(col *dataplane.Collector, epoch uint64) (*Report, error) {
	vios, err := col.Report()
	if err != nil {
		return nil, err
	}
	rep := &Report{Violations: fromDP(vios), Epoch: epoch}
	for _, d := range v.net.Devices() {
		if col.Arrived(d) != 0 {
			rep.ReachedDests = append(rep.ReachedDests, d)
		}
	}
	return rep, nil
}
