// Package s2 is a distributed network configuration verifier for
// hyper-scale datacenter networks, a from-scratch Go implementation of
// "S2: A Distributed Configuration Verifier for Hyper-Scale Networks"
// (SIGCOMM 2025).
//
// S2 "scales out" configuration verification: it parses vendor-style
// device configurations, partitions the network model into segments, and
// distributes both control plane simulation (computing every switch's
// routes to a fixed point) and data plane verification (forwarding
// symbolic packets encoded as BDDs) across multiple workers. Prefix
// sharding further bounds per-worker memory by computing routes for one
// subset of prefixes at a time.
//
// # Quick start
//
//	net, err := s2.LoadDirectory("configs/")
//	if err != nil { ... }
//	v, err := s2.NewVerifier(net, s2.Options{Workers: 4, Shards: 8})
//	if err != nil { ... }
//	if err := v.SimulateControlPlane(); err != nil { ... }
//	if _, err := v.ComputeDataPlane(); err != nil { ... }
//	report, err := v.CheckAllPairs()
//
// Workers run in-process by default; set Options.WorkerAddrs to drive
// worker processes started with cmd/s2worker over the sidecar RPC
// protocol.
//
// The package also exposes the paper's workload generators
// (SynthesizeFatTree, SynthesizeDCN) and the two baselines used in its
// evaluation live in internal/baseline with runners in cmd/s2bench.
package s2
