// Quickstart: synthesize a small FatTree, verify it with four distributed
// workers, and print the all-pair reachability report.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"s2"
)

func main() {
	// A k=6 FatTree: 45 switches, 18 announced /24 prefixes, eBGP
	// everywhere with ECMP — the paper's synthesized workload (§5.2).
	net, err := s2.SynthesizeFatTree(s2.FatTreeSpec{K: 6})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("synthesized FatTree6: %d switches\n", net.Size())

	// Four workers, eight prefix shards: the network model is
	// partitioned with the METIS-style scheme and routes are computed in
	// eight lower-memory rounds (§4.5).
	v, err := s2.NewVerifier(net, s2.Options{
		Workers:       4,
		Shards:        8,
		LoadEstimator: s2.FatTreeLoadEstimator(6),
	})
	if err != nil {
		log.Fatal(err)
	}

	start := time.Now()
	if err := v.SimulateControlPlane(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("control plane converged in %v\n", time.Since(start).Round(time.Millisecond))

	warnings, err := v.ComputeDataPlane()
	if err != nil {
		log.Fatal(err)
	}
	for _, w := range warnings {
		fmt.Println("warning:", w)
	}

	report, err := v.CheckAllPairs()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(report)

	peak, err := v.PeakMemoryBytes()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("per-worker peak modelled memory: %d KiB\n", peak/1024)
	stats, err := v.Stats()
	if err != nil {
		log.Fatal(err)
	}
	for _, st := range stats {
		fmt.Printf("  worker %d: %d switches, %d cross-worker route pulls, %d packets received\n",
			st.Worker, st.Nodes, st.RoutePulls, st.PacketsIn)
	}
}
