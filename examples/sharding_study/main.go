// sharding_study: the effect of prefix sharding (§4.5, §5.7) — computing
// routes for one subset of prefixes at a time trades extra rounds for a
// lower per-worker peak. Results are bit-identical at every shard count.
//
//	go run ./examples/sharding_study
package main

import (
	"fmt"
	"log"
	"time"

	"s2"
)

func main() {
	const k = 6
	fmt.Printf("%-8s %14s %12s %10s\n", "shards", "peak-mem", "cp-time", "routes")
	var baseRoutes int
	for _, shards := range []int{1, 2, 4, 8, 16, 32} {
		net, err := s2.SynthesizeFatTree(s2.FatTreeSpec{K: k})
		if err != nil {
			log.Fatal(err)
		}
		v, err := s2.NewVerifier(net, s2.Options{
			Workers:       4,
			Shards:        shards,
			KeepRIBs:      true,
			LoadEstimator: s2.FatTreeLoadEstimator(k),
		})
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		if err := v.SimulateControlPlane(); err != nil {
			log.Fatal(err)
		}
		elapsed := time.Since(start)
		peak, err := v.PeakMemoryBytes()
		if err != nil {
			log.Fatal(err)
		}
		routes, err := v.RouteCount()
		if err != nil {
			log.Fatal(err)
		}
		if baseRoutes == 0 {
			baseRoutes = routes
		} else if routes != baseRoutes {
			log.Fatalf("shard count changed results: %d vs %d routes", routes, baseRoutes)
		}
		fmt.Printf("%-8d %11dKiB %12s %10d\n",
			shards, peak/1024, elapsed.Round(time.Millisecond), routes)
	}
	fmt.Println("\nPeak memory falls with shard count while the computed routes stay")
	fmt.Println("identical; past the sweet spot the per-shard round overhead dominates")
	fmt.Println("the time (the U-shape of the paper's Figure 9).")
}
