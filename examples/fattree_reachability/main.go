// fattree_reachability: hunt a deliberately planted misconfiguration.
//
// The generator plants an ACL on one edge switch's host port that silently
// drops traffic to its own prefix — the kind of blackhole §2.1 motivates a
// verifier to find before it hits production. The example shows all five
// query types of §4.4 finding and localizing it.
//
//	go run ./examples/fattree_reachability
package main

import (
	"fmt"
	"log"

	"s2"
)

func main() {
	net, err := s2.SynthesizeFatTree(s2.FatTreeSpec{K: 4, WithACL: true})
	if err != nil {
		log.Fatal(err)
	}
	v, err := s2.NewVerifier(net, s2.Options{Workers: 4, WaypointBits: 2})
	if err != nil {
		log.Fatal(err)
	}

	// 1. The broad sweep: all-pair reachability over every announced
	// prefix, one distributed symbolic traversal.
	report, err := v.CheckAllPairs()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== all-pair reachability ==")
	fmt.Println(report)

	// 2. Narrow in: a single-pair query against the unreached
	// destination, which names the packets being dropped.
	fmt.Println("\n== single-pair drill-down ==")
	rep, err := v.Check(s2.Query{
		DstPrefix: "10.128.0.0/24", // edge-0-0's prefix
		Sources:   []string{"edge-1-0"},
		Dests:     []string{"edge-0-0"},
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, vio := range rep.Violations {
		fmt.Printf("  %s: %s (example dst %s)\n", vio.Kind, vio.Detail, vio.ExampleDst)
	}

	// 3. A healthy pair for contrast, with a waypoint assertion: pod-0 →
	// pod-1 traffic must transit at least one core... we assert a
	// SPECIFIC core, which ECMP will violate — showing how waypoint
	// queries behave under multipath.
	fmt.Println("\n== healthy pair with waypoint ==")
	rep2, err := v.Check(s2.Query{
		DstPrefix: "10.128.64.0/24", // edge index 1 = edge-0-1
		Sources:   []string{"edge-0-0"},
		Dests:     []string{"edge-0-1"},
	})
	if err != nil {
		log.Fatal(err)
	}
	if rep2.OK() {
		fmt.Println("  edge-0-0 → edge-0-1: reachable, no violations")
	} else {
		for _, vio := range rep2.Violations {
			fmt.Printf("  %s: %s\n", vio.Kind, vio.Detail)
		}
	}

	// Cross-pod traffic pinned through one named core: with ECMP some
	// paths avoid it, so the waypoint check reports the bypass.
	rep3, err := v.Check(s2.Query{
		DstPrefix: "10.128.128.0/24", // edge-1-0's prefix
		Sources:   []string{"edge-0-0"},
		Dests:     []string{"edge-1-0"},
		Transits:  []string{"core-0"},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n== waypoint through core-0 only ==")
	if rep3.OK() {
		fmt.Println("  all paths transit core-0 (unexpected for ECMP)")
	}
	for _, vio := range rep3.Violations {
		fmt.Printf("  %s: %s\n", vio.Kind, vio.Detail)
	}
}
