// dcn_audit: verify a "real DCN"-like network — the paper's hard case
// (§2.3): multi-generation Clos clusters (3- and 5-layer), per-layer
// shared ASNs with AS_PATH overwrite policies, route aggregation with
// community tagging at cluster tops, heterogeneous ECMP limits, and five
// vendor dialects with diverging semantics.
//
//	go run ./examples/dcn_audit
package main

import (
	"fmt"
	"log"
	"sort"
	"strings"

	"s2"
)

func main() {
	net, err := s2.SynthesizeDCN(s2.DCNSpec{
		Clusters:        3,
		TORsPerCluster:  4,
		FabricWidth:     3,
		CoreWidth:       2,
		DeepClusters:    true,
		WithAggregation: true,
		VLANsPerTOR:     2,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("synthesized DCN: %d switches across 3 clusters + core\n", net.Size())

	v, err := s2.NewVerifier(net, s2.Options{
		Workers:  4,
		Shards:   8, // aggregation creates prefix dependencies: the DPDG keeps each aggregate with its contributors (§4.5)
		KeepRIBs: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Misconfiguration surface #1: topology-level findings (unresolvable
	// neighbors, remote-as mismatches) appear before any simulation.
	for _, w := range v.TopologyWarnings() {
		fmt.Println("topology warning:", w)
	}

	report, err := v.CheckAllPairs()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(report)

	// Show what aggregation did to one cluster-top's RIB: the /16
	// aggregate is present, tagged, and the TOR contributors are visible
	// locally but suppressed from export.
	ribs, err := v.RIBs()
	if err != nil {
		log.Fatal(err)
	}
	names := make([]string, 0, len(ribs))
	for n := range ribs {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if !strings.HasPrefix(n, "c0-l2-") {
			continue
		}
		fmt.Printf("\naggregates on cluster-0 top %s:\n", n)
		for _, r := range ribs[n] {
			if strings.Contains(r, "aggregate") {
				fmt.Printf("  %s\n", r)
			}
		}
		break
	}

	// And how much route state the whole network carries.
	count, err := v.RouteCount()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntotal computed routes: %d\n", count)
}
