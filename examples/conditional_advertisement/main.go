// conditional_advertisement: BGP conditional advertisement (the classic
// primary/backup pattern, and the paper's own example of a prefix
// dependency beyond aggregation — §4.5 cites the Cisco feature) plus the
// §7 "unforeseen dependency" recovery: when prefix shards are built
// without knowing about the dependency, S2 detects it at simulation time,
// merges the affected shards, and recomputes.
//
//	go run ./examples/conditional_advertisement
package main

import (
	"fmt"
	"log"

	"s2"
)

// r1 —— r2 —— r3.  r2 holds a backup prefix (172.16/16) and advertises it
// to r3 only while r1's primary prefix (10.8.0.0/24) is ABSENT from r2's
// BGP table ("advertise-map … non-exist-map …").
func configs(withPrimary bool) map[string]string {
	r1 := `hostname r1
interface eth0
 ip address 10.0.0.0/31
interface vlan10
 ip address 10.8.0.1/24
interface vlan11
 ip address 10.9.0.1/24
router bgp 65001
 router-id 0.0.0.1
`
	if withPrimary {
		r1 += " network 10.8.0.0/24\n"
	}
	r1 += ` network 10.9.0.0/24
 neighbor 10.0.0.1 remote-as 65002
`
	return map[string]string{
		"r1": r1,
		"r2": `hostname r2
interface eth0
 ip address 10.0.0.1/31
interface eth1
 ip address 10.0.1.0/31
ip route 172.16.0.0/16 null0
ip prefix-list PL_BACKUP seq 10 permit 172.16.0.0/16
ip prefix-list PL_PRIMARY seq 10 permit 10.8.0.0/24
route-map ADV_BACKUP permit 10
 match ip address prefix-list PL_BACKUP
router bgp 65002
 router-id 0.0.0.2
 network 172.16.0.0/16
 neighbor 10.0.0.0 remote-as 65001
 neighbor 10.0.1.1 remote-as 65003
 neighbor 10.0.1.1 advertise-map ADV_BACKUP non-exist-map PL_PRIMARY
`,
		"r3": `hostname r3
interface eth0
 ip address 10.0.1.1/31
router bgp 65003
 router-id 0.0.0.3
 neighbor 10.0.1.0 remote-as 65002
`,
	}
}

func ribOf(texts map[string]string, node string) []string {
	net, err := s2.LoadConfigs(texts)
	if err != nil {
		log.Fatal(err)
	}
	v, err := s2.NewVerifier(net, s2.Options{Workers: 2, KeepRIBs: true})
	if err != nil {
		log.Fatal(err)
	}
	if err := v.SimulateControlPlane(); err != nil {
		log.Fatal(err)
	}
	ribs, err := v.RIBs()
	if err != nil {
		log.Fatal(err)
	}
	return ribs[node]
}

func main() {
	fmt.Println("== primary present: backup withheld from r3 ==")
	for _, r := range ribOf(configs(true), "r3") {
		fmt.Println("  r3:", r)
	}

	fmt.Println("\n== primary withdrawn: backup appears at r3 ==")
	for _, r := range ribOf(configs(false), "r3") {
		fmt.Println("  r3:", r)
	}

	// Now the §7 recovery path: shard the prefixes WITHOUT telling the
	// dependency graph about the conditional dependency. S2's workers
	// report the condition they consulted; the controller merges the
	// affected shards and recomputes, so the result still matches.
	fmt.Println("\n== prefix sharding with a runtime-detected dependency ==")
	net, err := s2.LoadConfigs(configs(true))
	if err != nil {
		log.Fatal(err)
	}
	v, err := s2.NewVerifier(net, s2.Options{Workers: 2, Shards: 3, KeepRIBs: true})
	if err != nil {
		log.Fatal(err)
	}
	if err := v.SimulateControlPlane(); err != nil {
		log.Fatal(err)
	}
	// With the full dependency graph (the default), no merges are needed:
	if merges := v.ShardMerges(); len(merges) == 0 {
		fmt.Println("  static DPDG co-located the dependent prefixes; no runtime merge needed")
	} else {
		for _, m := range merges {
			fmt.Println(" ", m)
		}
	}
	ribs, err := v.RIBs()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("  r3 under sharding:")
	for _, r := range ribs["r3"] {
		fmt.Println("   ", r)
	}
}
