// partition_study: compare the partition schemes of §5.6 on one FatTree —
// random, expert (pod-aware), metis (multilevel balanced min-cut), and the
// two adversarial extremes. The reasonable schemes land close together;
// the imbalanced extreme concentrates memory on one worker.
//
//	go run ./examples/partition_study
package main

import (
	"fmt"
	"log"

	"s2"
)

func main() {
	const k = 6
	fmt.Printf("%-12s %14s %14s %16s\n", "scheme", "peak-mem", "route-pulls", "status")
	for _, scheme := range []string{"random", "expert", "metis", "imbalanced", "commheavy"} {
		net, err := s2.SynthesizeFatTree(s2.FatTreeSpec{K: k})
		if err != nil {
			log.Fatal(err)
		}
		v, err := s2.NewVerifier(net, s2.Options{
			Workers:         4,
			Shards:          8,
			PartitionScheme: scheme,
			LoadEstimator:   s2.FatTreeLoadEstimator(k),
		})
		if err != nil {
			log.Fatal(err)
		}
		report, err := v.CheckAllPairs()
		if err != nil {
			log.Fatal(err)
		}
		peak, err := v.PeakMemoryBytes()
		if err != nil {
			log.Fatal(err)
		}
		// Cross-worker route pulls approximate the communication cost the
		// min-cut objective reduces.
		var pulls int64
		stats, err := v.Stats()
		if err != nil {
			log.Fatal(err)
		}
		for _, st := range stats {
			pulls += st.RoutePulls
		}
		status := "OK"
		if !report.OK() {
			status = "VIOLATIONS"
		}
		fmt.Printf("%-12s %11dKiB %14d %16s\n", scheme, peak/1024, pulls, status)
	}
	fmt.Println("\nAll schemes verify the same network to the same result (§5.6 compares")
	fmt.Println("only their performance); balance, not communication, dominates.")
}
