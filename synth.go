package s2

import "s2/internal/synth"

// FatTreeSpec configures the synthesized FatTree workload (§5.2): eBGP
// everywhere, one ASN per switch, ECMP, one announced /24 per edge switch.
type FatTreeSpec struct {
	// K is the pod count (even, >= 2); switch count is 5k²/4.
	K int
	// MaxPaths is the ECMP limit (default 64, the paper's setting).
	MaxPaths int
	// PrefixesPerEdge announces multiple /24s per edge switch.
	PrefixesPerEdge int
	// WithACL plants a deliberate ACL blackhole for property demos.
	WithACL bool
}

// SynthesizeFatTree generates a FatTree's configurations and parses them
// into a Network.
func SynthesizeFatTree(spec FatTreeSpec) (*Network, error) {
	texts, err := synth.FatTree(synth.FatTreeOptions{
		K:               spec.K,
		MaxPaths:        spec.MaxPaths,
		PrefixesPerEdge: spec.PrefixesPerEdge,
		WithACL:         spec.WithACL,
	})
	if err != nil {
		return nil, err
	}
	return LoadConfigs(texts)
}

// FatTreeSize returns the switch count of a k-pod FatTree.
func FatTreeSize(k int) int { return synth.FatTreeSize(k) }

// DCNSpec configures the "real DCN"-like workload (§2.3): multi-layer
// Clos clusters of differing depth, per-layer shared ASNs with AS_PATH
// overwrite, route aggregation with community tagging, heterogeneous ECMP,
// and five vendor dialects.
type DCNSpec struct {
	Clusters       int
	TORsPerCluster int
	FabricWidth    int
	CoreWidth      int
	// DeepClusters makes every second cluster 5 layers deep.
	DeepClusters bool
	// WithAggregation enables cluster-top route aggregation (the real
	// DCN's route-count reducer, §5.4).
	WithAggregation bool
	// VLANsPerTOR announces multiple business /24s per TOR (default 1).
	VLANsPerTOR int
}

// SynthesizeDCN generates the DCN workload and parses it into a Network.
func SynthesizeDCN(spec DCNSpec) (*Network, error) {
	texts, err := synth.DCN(synth.DCNOptions{
		Clusters:        spec.Clusters,
		TORsPerCluster:  spec.TORsPerCluster,
		FabricWidth:     spec.FabricWidth,
		CoreWidth:       spec.CoreWidth,
		DeepClusters:    spec.DeepClusters,
		WithAggregation: spec.WithAggregation,
		VLANsPerTOR:     spec.VLANsPerTOR,
	})
	if err != nil {
		return nil, err
	}
	return LoadConfigs(texts)
}

// ConfigTexts returns the raw configuration text of every device, keyed by
// hostname — useful for writing a synthesized network to disk.
func (n *Network) ConfigTexts() map[string]string {
	out := make(map[string]string, len(n.texts))
	for k, v := range n.texts {
		out[k] = v
	}
	return out
}
