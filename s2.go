package s2

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"s2/internal/config"
	"s2/internal/core"
	"s2/internal/dataplane"
	"s2/internal/fault"
	"s2/internal/obs"
	"s2/internal/partition"
	"s2/internal/route"
	"s2/internal/sidecar"
)

// slowWorkerMethods are the phase RPCs delayed by Options.SlowWorkerDelay.
// Ping is deliberately absent (the failure detector must keep passing), as
// are the probe-class pulls (they observe the straggler, not cause it).
var slowWorkerMethods = []string{
	"BeginShard", "GatherBGP", "ApplyBGP", "GatherOSPF", "ApplyOSPF",
	"EndShard", "ComputeDP", "BeginQuery", "BeginQueryBatch", "DPRound",
	"FinishQuery",
}

// Network is a parsed configuration snapshot ready for verification.
type Network struct {
	snap  *config.Snapshot
	texts map[string]string
}

// LoadDirectory parses every *.cfg file in dir.
func LoadDirectory(dir string) (*Network, error) {
	snap, err := config.ParseDirectory(dir)
	if err != nil {
		return nil, err
	}
	texts := make(map[string]string, len(snap.Devices))
	// Re-read through the snapshot is not possible (texts are not
	// retained), so load the files again keyed by hostname.
	raw, err := readDirTexts(dir)
	if err != nil {
		return nil, err
	}
	for name := range snap.Devices {
		text, ok := raw[name]
		if !ok {
			return nil, fmt.Errorf("s2: no config text for device %q", name)
		}
		texts[name] = text
	}
	return &Network{snap: snap, texts: texts}, nil
}

// LoadConfigs parses configuration texts keyed by hostname.
func LoadConfigs(texts map[string]string) (*Network, error) {
	keyed := make(map[string]string, len(texts))
	for name, text := range texts {
		keyed[name+".cfg"] = text
	}
	snap, err := config.ParseTexts(keyed)
	if err != nil {
		return nil, err
	}
	return &Network{snap: snap, texts: texts}, nil
}

// Devices returns device hostnames in sorted order.
func (n *Network) Devices() []string { return n.snap.DeviceNames() }

// Size returns the number of devices.
func (n *Network) Size() int { return len(n.snap.Devices) }

// Options configures a Verifier.
type Options struct {
	// Workers is the number of in-process workers (default 1).
	Workers int
	// WorkerAddrs, when set, are sidecar RPC addresses of pre-started
	// worker processes (cmd/s2worker); Workers is then ignored.
	WorkerAddrs []string
	// PartitionScheme is one of "metis" (default), "random", "expert",
	// "imbalanced", "commheavy".
	PartitionScheme string
	// Shards enables prefix sharding when > 1.
	Shards int
	// Seed fixes partitioning and shard shuffling (default 1).
	Seed int64
	// WaypointBits is the number of metadata bits available for waypoint
	// queries (default 0).
	WaypointBits int
	// MemoryBudgetBytes is the modelled per-worker memory budget
	// (0 = unlimited).
	MemoryBudgetBytes int64
	// SpillDir writes per-shard results to disk between rounds.
	SpillDir string
	// KeepRIBs retains full RIBs for the RIBs accessor.
	KeepRIBs bool
	// LoadEstimator biases the partitioner with per-device load
	// estimates (see FatTreeLoadEstimator).
	LoadEstimator func(device string) int64
	// Parallelism bounds each worker's goroutine pool for the per-node
	// simulation loops (0 = all CPUs, 1 = sequential; cmd/s2 -procs).
	Parallelism int
	// DisableBatchPulls reverts cross-worker route pulls to one RPC per
	// (node, neighbor) pair instead of one batched RPC per peer worker.
	DisableBatchPulls bool
	// DisableWireDedup reverts boundary-crossing packets and outcome
	// harvests to one independently serialized BDD per packet instead of
	// the shared-substrate wire codec with per-peer node dedup
	// (cmd/s2 -no-wire-dedup).
	DisableWireDedup bool
	// DisableQuerySlicing makes every query pass involve every worker
	// instead of only the workers the query's sources can possibly reach
	// within the hop budget (cmd/s2serve -no-query-slicing).
	DisableQuerySlicing bool
	// DisableQueryCache turns off the epoch-keyed query answer cache
	// (cmd/s2serve -no-query-cache).
	DisableQueryCache bool
	// GCStress makes every worker's BDD GC pacer collect at each safe
	// point where the node table grew at all (cmd/s2 -gc-stress). Results
	// are byte-identical; used by CI to exercise relocation heavily.
	GCStress bool
	// GCWipe reverts the workers' BDD collectors to the seed behavior —
	// single-goroutine mark, op cache wiped per collection — as the A/B
	// baseline for GC benchmarks (cmd/s2 -gc-wipe).
	GCWipe bool
	// RPCTimeout bounds every controller→worker (and worker→worker) RPC
	// attempt (0 = no deadline).
	RPCTimeout time.Duration
	// RPCRetries is the number of extra attempts for idempotent RPCs that
	// fail transiently.
	RPCRetries int
	// HeartbeatInterval enables the failure detector: workers are pinged
	// at this interval and declared dead after three consecutive misses
	// (0 disables heartbeats).
	HeartbeatInterval time.Duration
	// Recover re-partitions a dead worker's segment onto the survivors
	// and re-executes the in-flight phase instead of failing the run.
	Recover bool
	// HistorySamples sizes the fleet health time-series ring: every
	// HistoryInterval the controller snapshots its metrics registry plus
	// per-worker vitals pulled over the sidecar PullStats RPC into a ring
	// of this many points per series (0 disables the history plane and its
	// sampler goroutine entirely; cmd/s2serve -history).
	HistorySamples int
	// HistoryInterval is the fleet sampling cadence (default: the
	// heartbeat interval, else 5s).
	HistoryInterval time.Duration
	// ProfileCapacity bounds the controller-side pprof profile ring
	// harvested from workers over PullProfile (0 disables profile storage;
	// cmd/s2serve -profile-store).
	ProfileCapacity int
	// ProfileInterval paces the periodic heap-profile harvest when the
	// profile store is enabled (default 60s; < 0 disables periodic
	// harvest, leaving only on-demand pulls).
	ProfileInterval time.Duration
	// SlowWorkerDelay, when > 0, wraps worker SlowWorker's transport with
	// a persistent per-call delay on every phase RPC — an injected
	// straggler for exercising the fleet health plane (cmd/s2serve
	// -slow-worker). Heartbeats are left untouched so the failure detector
	// does not declare the worker dead.
	SlowWorkerDelay time.Duration
	// SlowWorker is the worker index slowed by SlowWorkerDelay (default 0).
	SlowWorker int
	// Tracer, when set, records the run as hierarchical spans (controller
	// stages, shards, convergence rounds, RPCs) exportable as Chrome
	// trace_event JSON via its WriteChromeTrace method (cmd/s2 -trace).
	Tracer *obs.Tracer
	// Metrics, when set, receives Prometheus-style counters, gauges, and
	// histograms for the run; serve it with obs.ServeIntrospection
	// (cmd/s2 -obs-addr).
	Metrics *obs.Registry
	// Logger, when set, receives leveled structured logs from the
	// controller, delta planner, and in-process workers (the -log-level /
	// -log-json flags of the binaries).
	Logger *obs.Logger
}

// FatTreeLoadEstimator returns the paper's per-role load estimates for a
// k-pod FatTree (§4.1), for use as Options.LoadEstimator.
func FatTreeLoadEstimator(k int) func(string) int64 {
	return partition.EstimateFatTreeLoad(k)
}

// Verifier runs the distributed verification pipeline.
//
// Concurrency: read-only operations against resident state (Check,
// CheckBatch, CheckAllPairs, RIBs, RouteCount) may run concurrently with
// each other; state-changing operations (SimulateControlPlane,
// ComputeDataPlane, ApplyDelta) take the verifier's write lock and are
// exclusive. A query therefore always observes one verified epoch — never
// a half-applied delta — and the epoch it reports is the epoch it was
// answered against.
type Verifier struct {
	net  *Network
	ctrl *core.Controller

	// qmu is the query-plane readers/writer lock described above; it also
	// guards cpDone/dpDone.
	qmu    sync.RWMutex
	cpDone bool
	dpDone bool
}

// NewVerifier builds a verifier over the network.
func NewVerifier(n *Network, opts Options) (*Verifier, error) {
	scheme := partition.Metis
	if opts.PartitionScheme != "" {
		var err error
		scheme, err = partition.ParseScheme(opts.PartitionScheme)
		if err != nil {
			return nil, err
		}
	}
	workers := opts.Workers
	if workers < 1 && len(opts.WorkerAddrs) == 0 {
		workers = 1
	}
	seed := opts.Seed
	if seed == 0 {
		seed = 1
	}
	var wrap func(id int, w sidecar.WorkerAPI) sidecar.WorkerAPI
	if opts.SlowWorkerDelay > 0 {
		slow, delay := opts.SlowWorker, opts.SlowWorkerDelay
		wrap = func(id int, w sidecar.WorkerAPI) sidecar.WorkerAPI {
			if id != slow {
				return w
			}
			// Delay phase RPCs only: Ping stays fast (failure detector) and
			// the probe-class RPCs stay honest (they measure the straggler).
			plans := make([]fault.Plan, 0, len(slowWorkerMethods))
			for _, m := range slowWorkerMethods {
				plans = append(plans, fault.Plan{Method: m, Mode: fault.Delay, Delay: delay})
			}
			return fault.NewInjector(w, plans...)
		}
	}
	ctrl, err := core.NewController(n.snap, n.texts, core.Options{
		Workers:      workers,
		WorkerAddrs:  opts.WorkerAddrs,
		Scheme:       scheme,
		Shards:       opts.Shards,
		Seed:         seed,
		MetaBits:     opts.WaypointBits,
		MemoryBudget: opts.MemoryBudgetBytes,
		SpillDir:     opts.SpillDir,
		KeepRIBs:     opts.KeepRIBs,
		LoadOf:       opts.LoadEstimator,

		Parallelism:         opts.Parallelism,
		DisableBatchPulls:   opts.DisableBatchPulls,
		DisableWireDedup:    opts.DisableWireDedup,
		DisableQuerySlicing: opts.DisableQuerySlicing,
		DisableQueryCache:   opts.DisableQueryCache,
		GCStress:            opts.GCStress,
		GCWipe:              opts.GCWipe,

		RPCTimeout:        opts.RPCTimeout,
		RPCRetries:        opts.RPCRetries,
		HeartbeatInterval: opts.HeartbeatInterval,
		Recover:           opts.Recover,
		WrapWorker:        wrap,

		HistorySamples:  opts.HistorySamples,
		HistoryInterval: opts.HistoryInterval,
		ProfileCapacity: opts.ProfileCapacity,
		ProfileInterval: opts.ProfileInterval,

		Tracer:  opts.Tracer,
		Metrics: opts.Metrics,
		Logger:  opts.Logger,
	})
	if err != nil {
		return nil, err
	}
	return &Verifier{net: n, ctrl: ctrl}, nil
}

// TopologyWarnings lists non-fatal inconsistencies found while deriving
// the topology (unresolvable BGP neighbors, remote-as mismatches) — often
// the first misconfigurations a verifier surfaces.
func (v *Verifier) TopologyWarnings() []string {
	return append([]string(nil), v.ctrl.Network().Warnings...)
}

// SimulateControlPlane runs the distributed fixed-point route computation
// (per prefix shard when sharding is enabled).
func (v *Verifier) SimulateControlPlane() error {
	v.qmu.Lock()
	defer v.qmu.Unlock()
	return v.simulateControlPlaneLocked()
}

func (v *Verifier) simulateControlPlaneLocked() error {
	if err := v.ctrl.RunControlPlane(); err != nil {
		return err
	}
	v.cpDone = true
	return nil
}

// ComputeDataPlane builds FIBs and per-port predicates on every worker.
// The returned warnings report unresolvable next hops.
func (v *Verifier) ComputeDataPlane() ([]string, error) {
	v.qmu.Lock()
	defer v.qmu.Unlock()
	return v.computeDataPlaneLocked()
}

func (v *Verifier) computeDataPlaneLocked() ([]string, error) {
	if !v.cpDone {
		if err := v.simulateControlPlaneLocked(); err != nil {
			return nil, err
		}
	}
	warnings, err := v.ctrl.ComputeDataPlane()
	if err != nil {
		return nil, err
	}
	v.dpDone = true
	return warnings, nil
}

// ensureDP makes the data plane resident, taking the write lock only when
// it is not already; warm callers pay one RLock'd flag read.
func (v *Verifier) ensureDP() error {
	v.qmu.RLock()
	done := v.dpDone
	v.qmu.RUnlock()
	if done {
		return nil
	}
	v.qmu.Lock()
	defer v.qmu.Unlock()
	if v.dpDone {
		return nil
	}
	_, err := v.computeDataPlaneLocked()
	return err
}

// Violation is one property violation.
type Violation struct {
	// Kind is "loop", "blackhole", "multipath-consistency", "waypoint",
	// or "unreachable".
	Kind string
	// Source and Node locate the violation when known.
	Source, Node string
	// Detail is a human-readable explanation; ExampleDst a concrete
	// destination IP drawn from the violating packets.
	Detail     string
	ExampleDst string
}

func fromDP(vs []dataplane.Violation) []Violation {
	out := make([]Violation, 0, len(vs))
	for _, v := range vs {
		out = append(out, Violation{
			Kind:       v.Kind,
			Source:     v.Source,
			Node:       v.Node,
			Detail:     v.Detail,
			ExampleDst: route.FormatAddr(v.ExampleDst),
		})
	}
	return out
}

// ReachabilityReport is the result of an all-pair reachability check.
type ReachabilityReport struct {
	// Sources and Dests count the prefix-owning nodes checked.
	Sources, Dests int
	// Unreached lists destination nodes with incomplete coverage.
	Unreached []string
	// Violations are the generic property findings.
	Violations []Violation
	// Epoch is the verified-state epoch the check was answered against.
	Epoch uint64
}

// OK reports whether the network passed cleanly.
func (r *ReachabilityReport) OK() bool {
	return len(r.Unreached) == 0 && len(r.Violations) == 0
}

// String summarizes the report.
func (r *ReachabilityReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "all-pair reachability: %d sources × %d dests", r.Sources, r.Dests)
	if r.OK() {
		b.WriteString(": OK")
		return b.String()
	}
	if len(r.Unreached) > 0 {
		fmt.Fprintf(&b, "; %d unreached (%s)", len(r.Unreached), strings.Join(r.Unreached, ", "))
	}
	for _, v := range r.Violations {
		fmt.Fprintf(&b, "\n  %s: %s (src=%s node=%s dst=%s)", v.Kind, v.Detail, v.Source, v.Node, v.ExampleDst)
	}
	return b.String()
}

// CheckAllPairs verifies all-pair reachability (the paper's default
// property, §5.2) in one distributed symbolic traversal.
func (v *Verifier) CheckAllPairs() (*ReachabilityReport, error) {
	if err := v.ensureDP(); err != nil {
		return nil, err
	}
	v.qmu.RLock()
	defer v.qmu.RUnlock()
	res, err := v.ctrl.CheckAllPairs()
	if err != nil {
		return nil, err
	}
	return &ReachabilityReport{
		Sources:    res.Sources,
		Dests:      res.Dests,
		Unreached:  res.Unreached,
		Violations: fromDP(res.Violations),
		Epoch:      res.Epoch,
	}, nil
}

// RIBs returns each device's computed routes as formatted strings (the
// show-ip-route view); requires Options.KeepRIBs.
func (v *Verifier) RIBs() (map[string][]string, error) {
	v.qmu.RLock()
	defer v.qmu.RUnlock()
	ribs, err := v.ctrl.CollectRIBs()
	if err != nil {
		return nil, err
	}
	out := make(map[string][]string, len(ribs))
	for node, rib := range ribs {
		for _, r := range rib.All() {
			out[node] = append(out[node], r.String())
		}
	}
	return out, nil
}

// RouteCount returns the total number of computed routes across all
// devices; requires Options.KeepRIBs.
func (v *Verifier) RouteCount() (int, error) {
	v.qmu.RLock()
	defer v.qmu.RUnlock()
	ribs, err := v.ctrl.CollectRIBs()
	if err != nil {
		return 0, err
	}
	total := 0
	for _, rib := range ribs {
		total += rib.RouteCount()
	}
	return total, nil
}

// WorkerStat is one worker's resource accounting.
type WorkerStat struct {
	Worker     int
	Nodes      int
	PeakBytes  int64
	RoutePulls int64
	PacketsIn  int64
}

// Stats reports per-worker accounting.
func (v *Verifier) Stats() ([]WorkerStat, error) {
	raw, err := v.ctrl.Stats()
	if err != nil {
		return nil, err
	}
	out := make([]WorkerStat, len(raw))
	for i, s := range raw {
		out[i] = WorkerStat{
			Worker:     s.WorkerID,
			Nodes:      s.Nodes,
			PeakBytes:  s.PeakBytes,
			RoutePulls: s.RoutePulls,
			PacketsIn:  s.PacketsIn,
		}
	}
	return out, nil
}

// PeakMemoryBytes returns the highest per-worker modelled peak.
func (v *Verifier) PeakMemoryBytes() (int64, error) {
	raw, err := v.ctrl.Stats()
	if err != nil {
		return 0, err
	}
	return core.MaxPeakBytes(raw), nil
}

// FaultStats reports fault-tolerance accounting as named counters:
// rpc.retries, rpc.timeouts, rpc.failures, heartbeat.misses,
// heartbeat.deaths, worker.deaths, recoveries. Zero counters are omitted.
func (v *Verifier) FaultStats() map[string]int64 {
	return v.ctrl.FaultCounters().Snapshot()
}

// Progress returns the live run view (current stage, shard, convergence
// iteration, routes settled) streamed from the workers' per-iteration
// replies. Safe to call concurrently with a run — it backs the /progress
// endpoint of cmd/s2 -obs-addr.
func (v *Verifier) Progress() core.Progress { return v.ctrl.Progress() }

// Close stops the failure detector and tears down worker connections. The
// verifier is unusable afterwards. Close is idempotent and safe to call
// concurrently with in-flight queries.
func (v *Verifier) Close() error { return v.ctrl.Close() }

// DeltaReport describes one applied configuration delta and the
// re-verification it triggered.
type DeltaReport struct {
	// Class is the most invasive per-device change class: "none", "dp",
	// "orig", "policy", or "topo".
	Class string
	// Mode is the re-verification path taken: "noop" (nothing semantic
	// changed), "dp" (data-plane recompute only), "shards" (dirty prefix
	// shards re-simulated), or "full" (complete pipeline).
	Mode string
	// Changed maps modified devices to their change class; Added and
	// Removed list devices that appeared or disappeared (a rename is a
	// remove plus an add).
	Changed map[string]string
	Added   []string
	Removed []string
	// DirtyShards is how many prefix-shard rounds were re-simulated;
	// TotalShards is the shard count of the new verified state.
	DirtyShards int
	TotalShards int
	// DirtyShardIDs lists the shard rounds that ran, in execution order (a
	// runtime dependency merge repeats the absorbing shard's id) — the
	// audit trail behind every skipped shard's soundness claim.
	DirtyShardIDs []int
	// StageSeconds maps pipeline stage names to the wall seconds this
	// delta spent in them.
	StageSeconds map[string]float64
	// Epoch is the verified-state epoch after the delta.
	Epoch uint64
	// Warnings are FIB resolution warnings from the data-plane compute.
	Warnings []string
}

// ApplyDelta applies per-device configuration changes to the resident
// verified state and re-verifies incrementally: set maps device names to
// replacement config texts (a text whose parsed hostname differs renames
// the device) and remove lists devices to delete. Only the shards whose
// prefixes the delta can affect are re-simulated; topology-class changes
// fall back to a full re-run. On return the verifier answers queries for
// the new configs exactly as if they had been verified from cold.
func (v *Verifier) ApplyDelta(set map[string]string, remove []string) (*DeltaReport, error) {
	v.qmu.Lock()
	defer v.qmu.Unlock()
	res, err := v.ctrl.ApplyDelta(set, remove)
	if err != nil {
		return nil, err
	}
	v.cpDone, v.dpDone = true, true
	changed := make(map[string]string, len(res.Changed))
	for name, cl := range res.Changed {
		changed[name] = cl.String()
	}
	var stages map[string]float64
	if len(res.Stages) > 0 {
		stages = make(map[string]float64, len(res.Stages))
		for name, d := range res.Stages {
			stages[name] = d.Seconds()
		}
	}
	return &DeltaReport{
		Class:         res.Class.String(),
		Mode:          res.Mode,
		Changed:       changed,
		Added:         res.Added,
		Removed:       res.Removed,
		DirtyShards:   res.DirtyShards,
		TotalShards:   res.TotalShards,
		DirtyShardIDs: res.DirtyShardIDs,
		StageSeconds:  stages,
		Epoch:         res.Epoch,
		Warnings:      res.Warnings,
	}, nil
}

// Epoch returns the verified-state epoch: 0 until the first verification
// completes, then +1 per completed run or accepted delta. Safe from any
// goroutine.
func (v *Verifier) Epoch() uint64 { return v.ctrl.Epoch() }

// ShardCount returns the prefix-shard count of the resident verified state
// (0 before the control plane has run).
func (v *Verifier) ShardCount() int { return v.ctrl.ShardCount() }

// SetRequestSpan points the verifier's span tree at root: pipeline spans
// opened while it is current parent under it. The serving layer gives each
// request its own root so a long-running daemon yields per-request traces
// instead of one process-lifetime trace. Returns the previous current
// span; restore it when the request completes. Call only between pipeline
// operations.
func (v *Verifier) SetRequestSpan(root *obs.Span) *obs.Span {
	return v.ctrl.SetRequestSpan(root)
}

// Devices returns the device hostnames of the currently verified
// configuration snapshot, sorted.
func (v *Verifier) Devices() []string { return v.ctrl.DeviceNames() }

// ConfigText returns the raw config text of one device ("" if unknown).
func (v *Verifier) ConfigText(device string) string { return v.ctrl.ConfigText(device) }

// HarvestSpans drains remote workers' span export rings into the verifier's
// trace now. Normally unnecessary — harvests piggyback on stage boundaries
// and Close — but useful before writing a trace mid-run.
func (v *Verifier) HarvestSpans() { v.ctrl.HarvestSpans() }

// FlightRecorder exposes the controller's always-on ring of structured
// events (phase transitions, RPC faults, evictions) for post-mortem dumps.
func (v *Verifier) FlightRecorder() *obs.FlightRecorder { return v.ctrl.FlightRecorder() }

// History exposes the fleet health time-series ring (nil unless
// Options.HistorySamples > 0). Safe to read concurrently with a run.
func (v *Verifier) History() *obs.History { return v.ctrl.History() }

// FleetHealth assembles the live fleet snapshot — per-worker vitals from
// the last PullStats sweep plus straggler scores — for dashboards and the
// /debug/dashboard endpoint. Safe from any goroutine.
func (v *Verifier) FleetHealth() core.FleetHealth { return v.ctrl.FleetHealth() }

// Profiles exposes the bounded ring of pprof profiles harvested from
// workers (nil unless Options.ProfileCapacity > 0).
func (v *Verifier) Profiles() *obs.ProfileStore { return v.ctrl.Profiles() }

// PullWorkerProfile captures a pprof profile ("cpu" or "heap") from one
// worker over the sidecar PullProfile RPC and stores it in the profile
// ring; seconds bounds CPU capture duration (0 = 2s default). Requires
// Options.ProfileCapacity > 0.
func (v *Verifier) PullWorkerProfile(worker int, kind string, seconds int) (*obs.Profile, error) {
	return v.ctrl.PullWorkerProfile(worker, kind, seconds)
}

// AttributionReport distills the merged trace and worker stats into a
// per-worker × per-stage accounting table (wall time, RPCs, bytes, BDD
// nodes, GC pauses). Render with String() or JSON().
func (v *Verifier) AttributionReport() *core.AttributionReport {
	return v.ctrl.AttributionReport()
}

// PhaseDurations reports wall-clock per pipeline phase.
func (v *Verifier) PhaseDurations() map[string]time.Duration {
	out := map[string]time.Duration{}
	for _, p := range v.ctrl.Timer().Phases() {
		out[p.Name] += p.Duration
	}
	return out
}

// readDirTexts loads *.cfg files keyed by hostname (filename stem).
func readDirTexts(dir string) (map[string]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	out := map[string]string{}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".cfg") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, err
		}
		out[strings.TrimSuffix(e.Name(), ".cfg")] = string(data)
	}
	return out, nil
}

// SimulatedParallelDurations reports per-phase critical-path durations:
// the sum over orchestration rounds of the slowest worker's round time —
// what an actually-parallel deployment would observe as elapsed time.
// Keys: "cp", "dp-compute", "dp-forward".
func (v *Verifier) SimulatedParallelDurations() map[string]time.Duration {
	return v.ctrl.CriticalPath()
}

// ShardMerges reports runtime shard merges performed during control plane
// simulation: when a conditional-advertisement dependency not captured in
// the static prefix dependency graph is detected at simulation time, the
// affected shards are merged and recomputed (§7).
func (v *Verifier) ShardMerges() []string {
	return v.ctrl.ShardMergeLog()
}
